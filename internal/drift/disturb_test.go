package drift

import (
	"math"
	"testing"
)

func TestDisturbValidate(t *testing.T) {
	for _, d := range []float64{0, 1e-9, 1e-3, MaxDisturb} {
		if err := (DisturbChannel{PerRead: d}).Validate(); err != nil {
			t.Errorf("Validate(%v): %v", d, err)
		}
	}
	for _, d := range []float64{-1e-9, MaxDisturb + 1e-9, 1, math.NaN()} {
		if err := (DisturbChannel{PerRead: d}).Validate(); err == nil {
			t.Errorf("Validate(%v) accepted an out-of-range probability", d)
		}
	}
	if (DisturbChannel{}).Enabled() {
		t.Error("zero channel reports Enabled")
	}
	if !(DisturbChannel{PerRead: 1e-6}).Enabled() {
		t.Error("nonzero channel reports disabled")
	}
}

// TestDisturbAccumClosedForm checks the log-space accumulation against the
// naive product for representative rates and read counts.
func TestDisturbAccumClosedForm(t *testing.T) {
	for _, d := range []float64{1e-9, 1e-6, 1e-3, 0.05} {
		c := DisturbChannel{PerRead: d}
		for _, r := range []int64{0, 1, 2, 10, 1000, 1_000_000} {
			want := 1 - math.Pow(1-d, float64(r))
			got := c.AccumProb(r)
			// math.Pow itself carries relative error at r=1e6 exponents;
			// the log-space form is the more accurate of the two.
			if math.Abs(got-want) > 1e-7*math.Max(1e-9, want) {
				t.Errorf("AccumProb(d=%v, r=%d) = %v, want %v", d, r, got, want)
			}
		}
	}
}

// TestDisturbAccumProperties: zero without reads or rate, monotone in both
// arguments, bounded by 1, and the uniform-data error probability carries
// the (LevelCount-1)/LevelCount bottom-level discount.
func TestDisturbAccumProperties(t *testing.T) {
	c := DisturbChannel{PerRead: 1e-4}
	if c.AccumProb(0) != 0 || (DisturbChannel{}).AccumProb(100) != 0 {
		t.Fatal("disturb probability nonzero without reads or rate")
	}
	prev := -1.0
	for _, r := range []int64{1, 2, 5, 100, 10_000, 10_000_000} {
		p := c.AccumProb(r)
		if p <= prev || p > 1 {
			t.Fatalf("AccumProb not strictly increasing into (0,1]: r=%d p=%v prev=%v", r, p, prev)
		}
		prev = p
	}
	prevRate := -1.0
	for _, d := range []float64{1e-8, 1e-6, 1e-4, 1e-2} {
		p := DisturbChannel{PerRead: d}.AccumProb(1000)
		if p <= prevRate {
			t.Fatalf("AccumProb not increasing in rate: d=%v", d)
		}
		prevRate = p
	}
	wantRatio := float64(LevelCount-1) / LevelCount
	if got := c.CellErrorProb(1000) / c.AccumProb(1000); math.Abs(got-wantRatio) > 1e-12 {
		t.Errorf("CellErrorProb/AccumProb = %v, want %v", got, wantRatio)
	}
}
