// Package gf implements arithmetic over the binary extension fields GF(2^m)
// used by the BCH error-correcting codes that protect MLC PCM lines.
//
// Elements are represented in polynomial basis as uint32 bit vectors.
// Multiplication and inversion go through log/antilog tables built from a
// primitive polynomial, the standard construction for ECC hardware and the
// fastest software approach for m <= 16.
package gf

import (
	"errors"
	"fmt"
)

// ErrDivideByZero reports division or inversion of the zero element.
var ErrDivideByZero = errors.New("gf: divide by zero")

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// including the x^m term, for the field sizes BCH codes use in practice.
// These are the conventional choices (e.g. Lin & Costello, Table 2.7).
var primitivePolys = map[int]uint32{
	3:  0b1011,              // x^3 + x + 1
	4:  0b10011,             // x^4 + x + 1
	5:  0b100101,            // x^5 + x^2 + 1
	6:  0b1000011,           // x^6 + x + 1
	7:  0b10001001,          // x^7 + x^3 + 1
	8:  0b100011101,         // x^8 + x^4 + x^3 + x^2 + 1
	9:  0b1000010001,        // x^9 + x^4 + 1
	10: 0b10000001001,       // x^10 + x^3 + 1
	11: 0b100000000101,      // x^11 + x^2 + 1
	12: 0b1000001010011,     // x^12 + x^6 + x^4 + x + 1
	13: 0b10000000011011,    // x^13 + x^4 + x^3 + x + 1
	14: 0b100010001000011,   // x^14 + x^10 + x^6 + x + 1
	15: 0b1000000000000011,  // x^15 + x + 1
	16: 0b10001000000001011, // x^16 + x^12 + x^3 + x + 1
}

// Field is GF(2^m) with precomputed log/antilog tables.
type Field struct {
	m    int
	size uint32 // 2^m
	mask uint32 // 2^m - 1, also the multiplicative order
	poly uint32
	exp  []uint32 // exp[i] = alpha^i, doubled length to skip a mod
	log  []uint32 // log[x] = i such that alpha^i = x, for x != 0
}

// NewField constructs GF(2^m) for 3 <= m <= 16 using the conventional
// primitive polynomial.
func NewField(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("gf: unsupported field degree m=%d (want 3..16)", m)
	}
	f := &Field{
		m:    m,
		size: 1 << m,
		mask: 1<<m - 1,
		poly: poly,
	}
	f.exp = make([]uint32, 2*int(f.mask))
	f.log = make([]uint32, f.size)
	x := uint32(1)
	for i := uint32(0); i < f.mask; i++ {
		f.exp[i] = x
		f.log[x] = i
		x <<= 1
		if x&f.size != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		// The polynomial was not primitive: alpha's order is below 2^m-1.
		return nil, fmt.Errorf("gf: polynomial %#b is not primitive for m=%d", poly, m)
	}
	// Mirror the table so exp[i+mask] == exp[i], avoiding a modulo in Mul.
	copy(f.exp[f.mask:], f.exp[:f.mask])
	return f, nil
}

// M returns the field degree.
func (f *Field) M() int { return f.m }

// Order returns the multiplicative order 2^m - 1 (also the BCH natural code
// length).
func (f *Field) Order() int { return int(f.mask) }

// Add returns a + b (= a - b) in GF(2^m).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a.
func (f *Field) Inv(a uint32) (uint32, error) {
	if a == 0 {
		return 0, ErrDivideByZero
	}
	return f.exp[f.mask-f.log[a]], nil
}

// Div returns a / b.
func (f *Field) Div(a, b uint32) (uint32, error) {
	if b == 0 {
		return 0, ErrDivideByZero
	}
	if a == 0 {
		return 0, nil
	}
	return f.exp[f.log[a]+f.mask-f.log[b]], nil
}

// Exp returns alpha^i for any integer exponent (negative allowed).
func (f *Field) Exp(i int) uint32 {
	i %= int(f.mask)
	if i < 0 {
		i += int(f.mask)
	}
	return f.exp[i]
}

// Log returns the discrete log of a (a != 0): the i with alpha^i = a.
func (f *Field) Log(a uint32) (int, error) {
	if a == 0 {
		return 0, ErrDivideByZero
	}
	return int(f.log[a]), nil
}

// Pow returns a^n.
func (f *Field) Pow(a uint32, n int) uint32 {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	la := int(f.log[a]) * n
	la %= int(f.mask)
	if la < 0 {
		la += int(f.mask)
	}
	return f.exp[la]
}

// MinPolynomial returns the minimal polynomial over GF(2) of alpha^i as a
// bit vector (bit j = coefficient of x^j). It is the product of
// (x - alpha^(i*2^j)) over the cyclotomic coset of i, computed with
// coefficients in GF(2^m); the result always collapses to {0,1} coefficients.
func (f *Field) MinPolynomial(i int) uint64 {
	coset := f.CyclotomicCoset(i)
	// poly holds GF(2^m) coefficients, poly[d] for degree d; start at 1.
	poly := []uint32{1}
	for _, e := range coset {
		root := f.Exp(e)
		next := make([]uint32, len(poly)+1)
		for d, c := range poly {
			// Multiply by (x + root): x*c contributes to degree d+1,
			// root*c to degree d.
			next[d+1] ^= c
			next[d] ^= f.Mul(c, root)
		}
		poly = next
	}
	var bits uint64
	for d, c := range poly {
		if c == 1 {
			bits |= 1 << d
		} else if c != 0 {
			// Cannot happen for a genuine cyclotomic coset; guard anyway.
			return 0
		}
	}
	return bits
}

// CyclotomicCoset returns the 2-cyclotomic coset of i modulo 2^m-1 in
// ascending orbit order {i, 2i, 4i, ...}.
func (f *Field) CyclotomicCoset(i int) []int {
	n := int(f.mask)
	i = ((i % n) + n) % n
	coset := []int{i}
	for j := i * 2 % n; j != i; j = j * 2 % n {
		coset = append(coset, j)
	}
	return coset
}
