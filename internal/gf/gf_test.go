package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustField(t *testing.T, m int) *Field {
	t.Helper()
	f, err := NewField(m)
	if err != nil {
		t.Fatalf("NewField(%d): %v", m, err)
	}
	return f
}

func TestNewFieldSupportedDegrees(t *testing.T) {
	for m := 3; m <= 16; m++ {
		f := mustField(t, m)
		if f.Order() != 1<<m-1 {
			t.Errorf("m=%d: order %d, want %d", m, f.Order(), 1<<m-1)
		}
	}
}

func TestNewFieldRejectsUnsupported(t *testing.T) {
	for _, m := range []int{0, 1, 2, 17, -3} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d) succeeded, want error", m)
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	f := mustField(t, 10)
	for i := 0; i < f.Order(); i++ {
		a := f.Exp(i)
		got, err := f.Log(a)
		if err != nil {
			t.Fatalf("Log(%d): %v", a, err)
		}
		if got != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, got)
		}
	}
}

func TestExpNegativeAndWrap(t *testing.T) {
	f := mustField(t, 8)
	n := f.Order()
	if f.Exp(-1) != f.Exp(n-1) {
		t.Error("Exp(-1) != Exp(order-1)")
	}
	if f.Exp(n) != 1 {
		t.Error("Exp(order) != 1")
	}
	if f.Exp(3*n+5) != f.Exp(5) {
		t.Error("Exp does not wrap for large exponents")
	}
}

func TestMulProperties(t *testing.T) {
	f := mustField(t, 10)
	rng := rand.New(rand.NewSource(5))
	randElem := func() uint32 { return uint32(rng.Intn(1 << 10)) }
	for i := 0; i < 5000; i++ {
		a, b, c := randElem(), randElem(), randElem()
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatalf("commutativity fails at %d,%d", a, b)
		}
		if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
			t.Fatalf("associativity fails at %d,%d,%d", a, b, c)
		}
		// Distributivity over XOR addition.
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("identity fails at %d", a)
		}
		if f.Mul(a, 0) != 0 {
			t.Fatalf("zero annihilator fails at %d", a)
		}
	}
}

func TestInvDiv(t *testing.T) {
	f := mustField(t, 9)
	for a := uint32(1); a < uint32(f.Order())+1; a++ {
		inv, err := f.Inv(a)
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if f.Mul(a, inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0) succeeded")
	}
	if _, err := f.Div(5, 0); err == nil {
		t.Error("Div by 0 succeeded")
	}
	got, err := f.Div(0, 7)
	if err != nil || got != 0 {
		t.Errorf("Div(0,7) = %d, %v", got, err)
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	f := mustField(t, 10)
	prop := func(aRaw, bRaw uint16) bool {
		a := uint32(aRaw) & 1023
		b := uint32(bRaw) & 1023
		if b == 0 {
			return true
		}
		q, err := f.Div(a, b)
		return err == nil && f.Mul(q, b) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	f := mustField(t, 8)
	a := f.Exp(37)
	if f.Pow(a, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 != 1 (empty product convention)")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
	want := uint32(1)
	for i := 0; i < 6; i++ {
		want = f.Mul(want, a)
	}
	if f.Pow(a, 6) != want {
		t.Errorf("Pow(a,6) = %d, want %d", f.Pow(a, 6), want)
	}
	// Fermat: a^(2^m-1) = 1.
	if f.Pow(a, f.Order()) != 1 {
		t.Error("a^order != 1")
	}
	// Negative exponent = inverse power.
	inv, _ := f.Inv(a)
	if f.Pow(a, -1) != inv {
		t.Error("a^-1 != Inv(a)")
	}
}

func TestCyclotomicCoset(t *testing.T) {
	f := mustField(t, 4) // n = 15
	got := f.CyclotomicCoset(1)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("coset of 1 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coset of 1 = %v, want %v", got, want)
		}
	}
	// Coset of 5 mod 15 is {5, 10}.
	got5 := f.CyclotomicCoset(5)
	if len(got5) != 2 || got5[0] != 5 || got5[1] != 10 {
		t.Errorf("coset of 5 = %v, want [5 10]", got5)
	}
}

func TestMinPolynomialGF16(t *testing.T) {
	// Classic GF(16) with x^4+x+1: minimal polynomial of alpha is
	// x^4+x+1 = 0b10011, of alpha^3 is x^4+x^3+x^2+x+1 = 0b11111,
	// of alpha^5 is x^2+x+1 = 0b111 (alpha^5 has order 3).
	f := mustField(t, 4)
	tests := []struct {
		i    int
		want uint64
	}{
		{1, 0b10011},
		{3, 0b11111},
		{5, 0b111},
	}
	for _, tt := range tests {
		if got := f.MinPolynomial(tt.i); got != tt.want {
			t.Errorf("MinPolynomial(alpha^%d) = %#b, want %#b", tt.i, got, tt.want)
		}
	}
}

func TestMinPolynomialHasRoot(t *testing.T) {
	// Every element of the coset must be a root of the minimal polynomial
	// when evaluated in GF(2^m).
	f := mustField(t, 10)
	for _, i := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
		mp := f.MinPolynomial(i)
		for _, e := range f.CyclotomicCoset(i) {
			root := f.Exp(e)
			var val uint32
			for d := 0; d < 64; d++ {
				if mp&(1<<d) != 0 {
					val ^= f.Pow(root, d)
				}
			}
			if val != 0 {
				t.Errorf("alpha^%d is not a root of minpoly(alpha^%d) = %#b", e, i, mp)
			}
		}
	}
}
