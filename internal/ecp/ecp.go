// Package ecp implements Error-Correcting Pointers (Schechter et al., the
// paper's reference [27]) adapted to MLC cells — the hard-error companion
// the ReadDuo paper leaves as orthogonal work in §III-E ("to defend hard
// errors, we may increase the error correction capability of the current
// ECC chip").
//
// PCM cells wear out permanently after ~1e8 programs; the program-and-
// verify loop detects each failure at write time. An ECP-n structure spends
// a few extra bits per line on n (pointer, replacement-level) entries: a
// read substitutes the stored level for each failed cell before ECC
// decoding, so the BCH-8 budget stays dedicated to drift (soft) errors —
// exactly the separation of concerns ReadDuo's reliability analysis
// assumes.
package ecp

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"

	"readduo/internal/cell"
)

// ErrExhausted reports a line with more hard failures than the table can
// repair — the line must be decommissioned (remapped by a higher-level
// scheme such as PAYG or FREE-p, outside this package's scope).
var ErrExhausted = errors.New("ecp: correction entries exhausted")

// Entry is one pointer: a failed cell and the level reads should see.
type Entry struct {
	Cell  int
	Level int
}

// Table is an ECP-n structure for one memory line.
type Table struct {
	capacity int
	cells    int
	entries  []Entry
}

// New builds an ECP table with `capacity` entries covering a line of
// `cells` cells.
func New(capacity, cells int) (*Table, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("ecp: capacity %d must be positive", capacity)
	}
	if cells < 2 {
		return nil, fmt.Errorf("ecp: cell count %d must be at least 2", cells)
	}
	return &Table{capacity: capacity, cells: cells}, nil
}

// Capacity returns the entry budget and Used the consumed entries.
func (t *Table) Capacity() int { return t.capacity }

// Used returns how many entries are occupied.
func (t *Table) Used() int { return len(t.entries) }

// StorageBits returns the per-line SLC cost of the structure: per entry a
// cell pointer plus a 2-bit replacement level, plus one line-level "full"
// flag, following the original ECP layout.
func (t *Table) StorageBits() int {
	ptr := bits.Len(uint(t.cells - 1))
	return t.capacity*(ptr+2) + 1
}

// Register records (or updates) the replacement level for a failed cell.
func (t *Table) Register(cellIdx, level int) error {
	if cellIdx < 0 || cellIdx >= t.cells {
		return fmt.Errorf("ecp: cell %d out of range 0..%d", cellIdx, t.cells-1)
	}
	if level < 0 || level > 3 {
		return fmt.Errorf("ecp: level %d out of range 0..3", level)
	}
	for i := range t.entries {
		if t.entries[i].Cell == cellIdx {
			t.entries[i].Level = level
			return nil
		}
	}
	if len(t.entries) >= t.capacity {
		return fmt.Errorf("%w: %d entries", ErrExhausted, t.capacity)
	}
	t.entries = append(t.entries, Entry{Cell: cellIdx, Level: level})
	return nil
}

// Lookup returns the replacement level for a repaired cell.
func (t *Table) Lookup(cellIdx int) (int, bool) {
	for _, e := range t.entries {
		if e.Cell == cellIdx {
			return e.Level, true
		}
	}
	return 0, false
}

// ProtectedLine couples a Monte-Carlo MLC line with an ECP table: writes
// run program-and-verify and register hard failures; reads substitute the
// registered levels before BCH decoding.
type ProtectedLine struct {
	line  *cell.Line
	table *Table
}

// NewProtectedLine wraps a line with an ECP-capacity table.
func NewProtectedLine(line *cell.Line, capacity int) (*ProtectedLine, error) {
	if line == nil {
		return nil, fmt.Errorf("ecp: nil line")
	}
	table, err := New(capacity, line.CellCount())
	if err != nil {
		return nil, err
	}
	return &ProtectedLine{line: line, table: table}, nil
}

// Table exposes the correction structure (for inspection).
func (p *ProtectedLine) Table() *Table { return p.table }

// DataBytes returns the payload size.
func (p *ProtectedLine) DataBytes() int { return p.line.DataBytes() }

// Write stores data at time now, registering every verify failure. It
// returns ErrExhausted (wrapped) once the line has more worn-out cells than
// the table covers; the data is then no longer durably stored.
func (p *ProtectedLine) Write(data []byte, now float64, rng *rand.Rand) error {
	failures, err := p.line.WriteVerified(data, now, rng)
	if err != nil {
		return err
	}
	for _, f := range failures {
		if err := p.table.Register(f.Cell, f.Want); err != nil {
			return err
		}
	}
	return nil
}

// Read senses the line, repairs registered hard failures, and decodes.
func (p *ProtectedLine) Read(metric cell.ReadMetric, now float64) (cell.ReadResult, error) {
	return p.line.ReadCorrected(metric, now, p.table.Lookup)
}
