package ecp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"readduo/internal/bch"
	"readduo/internal/cell"
	"readduo/internal/drift"
)

func newLine(t testing.TB) *cell.Line {
	t.Helper()
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := cell.NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTableValidation(t *testing.T) {
	if _, err := New(0, 296); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(6, 1); err == nil {
		t.Error("single-cell line accepted")
	}
	tab, err := New(2, 296)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Register(-1, 0); err == nil {
		t.Error("negative cell accepted")
	}
	if err := tab.Register(296, 0); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if err := tab.Register(0, 4); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestTableRegisterLookupExhaust(t *testing.T) {
	tab, err := New(2, 296)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Register(10, 3); err != nil {
		t.Fatal(err)
	}
	if err := tab.Register(20, 1); err != nil {
		t.Fatal(err)
	}
	if lv, ok := tab.Lookup(10); !ok || lv != 3 {
		t.Errorf("Lookup(10) = %d,%v", lv, ok)
	}
	if _, ok := tab.Lookup(99); ok {
		t.Error("unregistered cell found")
	}
	// Updating an existing entry consumes no new slot.
	if err := tab.Register(10, 0); err != nil {
		t.Errorf("update rejected: %v", err)
	}
	if lv, _ := tab.Lookup(10); lv != 0 {
		t.Error("update lost")
	}
	if err := tab.Register(30, 2); !errors.Is(err, ErrExhausted) {
		t.Errorf("third entry error = %v, want ErrExhausted", err)
	}
	if tab.Used() != 2 || tab.Capacity() != 2 {
		t.Errorf("used/capacity = %d/%d", tab.Used(), tab.Capacity())
	}
}

func TestStorageBits(t *testing.T) {
	// ECP-6 over a 296-cell line: pointer = 9 bits, level = 2 bits,
	// plus the full flag: 6*11+1 = 67.
	tab, err := New(6, 296)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.StorageBits(); got != 67 {
		t.Errorf("StorageBits = %d, want 67", got)
	}
}

func TestProtectedLineSurvivesStuckCells(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	line := newLine(t)
	// Median endurance 50 writes: hammering quickly wears cells out.
	line.ArmWearout(50, 0.25, rng)
	pl, err := NewProtectedLine(line, 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	now := 0.0
	var lastGood []byte
	for w := 0; w < 60; w++ {
		rng.Read(data)
		now += 1
		if err := pl.Write(data, now, rng); err != nil {
			if errors.Is(err, ErrExhausted) {
				break // line died; verified below that it lived a while
			}
			t.Fatalf("write %d: %v", w, err)
		}
		lastGood = append(lastGood[:0], data...)
		res, err := pl.Read(cell.ReadR, now)
		if err != nil {
			t.Fatalf("read %d: %v", w, err)
		}
		if !bytes.Equal(res.Data, lastGood) {
			t.Fatalf("write %d: payload corrupted with %d stuck cells repaired",
				w, pl.Table().Used())
		}
	}
	if len(line.StuckCells()) == 0 {
		t.Fatal("no cells wore out; test premise broken")
	}
	if pl.Table().Used() == 0 {
		t.Fatal("ECP never engaged")
	}
}

func TestProtectedLineWithoutWearoutIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pl, err := NewProtectedLine(newLine(t), 6)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	rng.Read(data)
	if err := pl.Write(data, 0, rng); err != nil {
		t.Fatal(err)
	}
	res, err := pl.Read(cell.ReadM, 640)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Error("payload lost")
	}
	if pl.Table().Used() != 0 {
		t.Errorf("phantom registrations: %d", pl.Table().Used())
	}
}

func TestProtectedLineExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	line := newLine(t)
	line.ArmWearout(5, 0.3, rng) // brutal endurance: fails fast
	pl, err := NewProtectedLine(line, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	var sawExhausted bool
	for w := 0; w < 40; w++ {
		rng.Read(data)
		if err := pl.Write(data, float64(w), rng); err != nil {
			if !errors.Is(err, ErrExhausted) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawExhausted = true
			break
		}
	}
	if !sawExhausted {
		t.Error("ECP-2 never exhausted under endurance-5 hammering")
	}
}

func TestNewProtectedLineNil(t *testing.T) {
	if _, err := NewProtectedLine(nil, 6); err == nil {
		t.Error("nil line accepted")
	}
}
