// Package corpus names the workload scenarios that go beyond the Table X
// SPEC stand-ins: stress patterns the paper never ran (write-heavy, scan,
// zipfian, bursty-diurnal) plus ingested-trace entries for real captures.
//
// Every scenario registers a trace.Benchmark under the "corpus:" prefix,
// so the whole corpus is addressable wherever benchmarks are named — one
// campaign matrix through readduo-sim (-benchmarks corpus:zipfian,
// corpus:scan), sweeps, and the serve spec grammar
// (GET /v1/compare?benchmark=corpus:zipfian&schemes=Ideal,LWT-4).
//
// Importing the package (blank import for binaries) performs the
// registration.
package corpus

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"readduo/internal/trace"
)

// Prefix namespaces corpus scenarios in the benchmark registry.
const Prefix = "corpus:"

// Scenario is one named workload of the corpus.
type Scenario struct {
	// Name is the short scenario name ("zipfian"); the registered
	// benchmark name is Prefix + Name.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Benchmark is the registered profile driving the generator (and,
	// for ingested entries, the age profile accompanying a replayed
	// capture).
	Benchmark trace.Benchmark
	// Ingested marks runtime-registered trace-replay entries (the
	// profile models ages only; the access stream comes from a capture).
	Ingested bool
}

const (
	kilo = 1024
	meg  = 1024 * 1024
)

// builtin returns the static scenario set. Profiles are chosen to stress
// exactly the axes ReadDuo is sensitive to: read/write mix, reuse skew,
// streaming scans over long-cold data, and time-varying bank pressure.
func builtin() []Scenario {
	mk := func(name, desc string, b trace.Benchmark) Scenario {
		b.Name = Prefix + name
		return Scenario{Name: name, Desc: desc, Benchmark: b}
	}
	return []Scenario{
		mk("write-heavy", "store-dominated stream; write queues and cell wear dominate", trace.Benchmark{
			RPKI: 2.0, WPKI: 6.0,
			WorkingSetLines: 1 * meg, HotFraction: 0.40, HotSetLines: 512,
			StreamFraction: 0.30,
			FreshFrac:      0.95, MidFrac: 0.03,
			MidAge: 320 * time.Second, OldAge: time.Hour,
		}),
		mk("scan", "sequential read-mostly sweep over long-cold data; LWT's untracked worst case", trace.Benchmark{
			RPKI: 6.0, WPKI: 0.3,
			WorkingSetLines: 4 * meg, HotFraction: 0.05, HotSetLines: 256,
			StreamFraction: 0.90,
			FreshFrac:      0.10, MidFrac: 0.20,
			MidAge: 1280 * time.Second, OldAge: 4 * time.Hour,
		}),
		mk("zipfian", "heavily skewed reuse on a tiny hot set; conversion's best case", trace.Benchmark{
			RPKI: 8.0, WPKI: 2.0,
			WorkingSetLines: 2 * meg, HotFraction: 0.85, HotSetLines: 128,
			StreamFraction: 0.02,
			FreshFrac:      0.60, MidFrac: 0.25,
			MidAge: 640 * time.Second, OldAge: 2 * time.Hour,
		}),
		mk("bursty-diurnal", "sinusoidally modulated intensity; alternating burst and trough bank pressure", trace.Benchmark{
			RPKI: 4.0, WPKI: 1.5,
			WorkingSetLines: 1 * meg, HotFraction: 0.50, HotSetLines: 512,
			StreamFraction: 0.20,
			FreshFrac:      0.70, MidFrac: 0.20,
			MidAge: 640 * time.Second, OldAge: 2 * time.Hour,
			BurstFactor: 0.80, BurstPeriodRecs: 4096,
		}),
		mk("ingested", "neutral age profile accompanying a replayed external capture", ingestedProfile()),
	}
}

// ingestedProfile is the neutral profile paired with replayed captures:
// the capture supplies the access stream, this supplies the pre-window
// age distribution of first-touch reads.
func ingestedProfile() trace.Benchmark {
	return trace.Benchmark{
		RPKI: 4.0, WPKI: 1.0,
		WorkingSetLines: 1 * meg, HotFraction: 0.50, HotSetLines: 512,
		StreamFraction: 0.20,
		FreshFrac:      0.50, MidFrac: 0.30,
		MidAge: 640 * time.Second, OldAge: 2 * time.Hour,
	}
}

func init() {
	for _, sc := range builtin() {
		if err := trace.Register(sc.Benchmark); err != nil {
			panic(fmt.Sprintf("corpus: %v", err))
		}
	}
}

// Scenarios lists the static corpus in definition order.
func Scenarios() []Scenario { return builtin() }

// Names lists the registered benchmark names of the static corpus.
func Names() []string {
	scs := builtin()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Benchmark.Name
	}
	sort.Strings(out)
	return out
}

// ByName resolves a scenario by short name ("zipfian") or registered
// name ("corpus:zipfian").
func ByName(name string) (Scenario, bool) {
	short := strings.TrimPrefix(name, Prefix)
	for _, sc := range builtin() {
		if sc.Name == short {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RegisterIngested registers a runtime scenario for a replayed capture
// under corpus:<name>, using the neutral ingested age profile. The
// returned benchmark is what campaign specs should carry; the caller
// pairs it with a trace source via the spec's Configure hook.
func RegisterIngested(name string) (trace.Benchmark, error) {
	short := strings.TrimPrefix(name, Prefix)
	if short == "" {
		return trace.Benchmark{}, fmt.Errorf("corpus: ingested scenario needs a name")
	}
	if strings.ContainsAny(short, ", \t\n") {
		return trace.Benchmark{}, fmt.Errorf("corpus: scenario name %q must not contain commas or spaces", short)
	}
	b := ingestedProfile()
	b.Name = Prefix + short
	if err := trace.Register(b); err != nil {
		return trace.Benchmark{}, err
	}
	return b, nil
}
