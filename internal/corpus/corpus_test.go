package corpus

import (
	"strings"
	"testing"

	"readduo/internal/trace"
)

// TestCorpusRegistered pins the acceptance-criteria surface: at least 4
// named scenarios, every one resolvable through trace.ByName (the hook
// readduo-sim, sweeps, and the serve grammar all use), profiles valid.
func TestCorpusRegistered(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 4 {
		t.Fatalf("corpus has %d scenarios, want >= 4", len(scs))
	}
	for _, sc := range scs {
		if !strings.HasPrefix(sc.Benchmark.Name, Prefix) {
			t.Fatalf("scenario %q benchmark name %q lacks the corpus prefix", sc.Name, sc.Benchmark.Name)
		}
		if err := sc.Benchmark.Validate(); err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
		got, ok := trace.ByName(sc.Benchmark.Name)
		if !ok {
			t.Fatalf("scenario %q not registered in trace.ByName", sc.Benchmark.Name)
		}
		if got != sc.Benchmark {
			t.Fatalf("scenario %q registry mismatch", sc.Benchmark.Name)
		}
	}
	// Short and prefixed lookups both resolve.
	if _, ok := ByName("zipfian"); !ok {
		t.Fatal("ByName(zipfian) failed")
	}
	if _, ok := ByName("corpus:zipfian"); !ok {
		t.Fatal("ByName(corpus:zipfian) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) resolved")
	}
}

// TestScenarioStreamsDiffer sanity-checks that the scenarios drive
// distinct access patterns: the write fraction orders write-heavy above
// scan, and zipfian concentrates reuse far more than scan.
func TestScenarioStreamsDiffer(t *testing.T) {
	frac := func(name string) (writeFrac float64, distinct int) {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		g, err := trace.NewGenerator(sc.Benchmark, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		const n = 20000
		writes := 0
		lines := map[uint64]bool{}
		for i := 0; i < n; i++ {
			rec, err := g.Next(0)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Write {
				writes++
			}
			lines[rec.Line] = true
		}
		return float64(writes) / n, len(lines)
	}
	whWrites, _ := frac("write-heavy")
	scanWrites, scanLines := frac("scan")
	_, zipfLines := frac("zipfian")
	if whWrites < 0.5 {
		t.Fatalf("write-heavy write fraction %.2f, want > 0.5", whWrites)
	}
	if scanWrites > 0.1 {
		t.Fatalf("scan write fraction %.2f, want < 0.1", scanWrites)
	}
	if zipfLines*4 > scanLines {
		t.Fatalf("zipfian touched %d lines vs scan %d — reuse not concentrated", zipfLines, scanLines)
	}
}

// TestRegisterIngested pins runtime capture registration.
func TestRegisterIngested(t *testing.T) {
	b, err := RegisterIngested("test-capture")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "corpus:test-capture" {
		t.Fatalf("registered name %q", b.Name)
	}
	if _, ok := trace.ByName("corpus:test-capture"); !ok {
		t.Fatal("ingested scenario not resolvable")
	}
	// Idempotent.
	if _, err := RegisterIngested("corpus:test-capture"); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := RegisterIngested(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := RegisterIngested("a,b"); err == nil {
		t.Fatal("comma name accepted")
	}
}
