// Package cell provides the Monte-Carlo model of MLC PCM cells and memory
// lines: program-and-verify writes, resistance drift over time, R-/M-metric
// sensing, and BCH-protected line readout. It is the physical ground truth
// the higher-level simulator's analytical shortcuts are validated against,
// and the engine behind the paper's Figure 6 (why differential writes break
// the programmed resistance distribution).
//
// A physical cell has one phase-configuration; the R-metric and M-metric are
// two readouts of that same state. The model therefore samples one drift
// exponent per cell and derives the M-metric trajectory from it (alpha_M =
// alpha_R / 7, value four decades below), keeping the two readouts of a cell
// perfectly correlated as in the underlying device physics.
package cell

import (
	"fmt"
	"math/rand"

	"readduo/internal/drift"
)

// Cell is one 2-bit MLC PCM cell.
type Cell struct {
	level        int8    // programmed storage level 0..3
	logR0        float64 // log10 of the R-metric at program time
	alphaR       float64 // per-write drift exponent (R-metric)
	programmedAt float64 // seconds; drift reference for this write
	writes       uint64  // endurance counter
	programmed   bool
	endurance    uint64 // writes until permanent failure; 0 = unlimited
	stuck        bool   // worn out: ignores programming, holds its level
	disturbed    bool   // read disturb: partial SET until the next program
}

// Level returns the programmed level (ground truth, independent of drift).
func (c *Cell) Level() int { return int(c.level) }

// Writes returns how many program operations the cell has absorbed — the
// quantity PCM endurance is measured in.
func (c *Cell) Writes() uint64 { return c.writes }

// Programmed reports whether the cell has ever been written.
func (c *Cell) Programmed() bool { return c.programmed }

// Disturbed reports whether accumulated read current has partially SET the
// cell since its last program (see RecordRead).
func (c *Cell) Disturbed() bool { return c.disturbed }

// RecordRead models one sensing operation under a read-disturb channel
// with per-read disturb probability d (drift.DisturbChannel): with
// probability d the read's current pulse partially crystallizes the GST,
// dropping the cell one readout level until the next program operation
// restores it. Disturbance latches — once disturbed, further reads change
// nothing — so P[disturbed after r reads] = 1-(1-d)^r, the closed form the
// differential tests pin.
func (c *Cell) RecordRead(d float64, rng *rand.Rand) {
	if d <= 0 || !c.programmed || c.disturbed {
		return
	}
	if rng.Float64() < d {
		c.disturbed = true
	}
}

// disturbShift applies the read-disturb level drop to a sensed level: a
// partially SET cell reads one state low, and the bottom state has nothing
// below it.
func (c *Cell) disturbShift(level int) int {
	if c.disturbed && level > 0 {
		return level - 1
	}
	return level
}

// Program performs a program-and-verify write at time now (seconds): the
// iterative SET/RESET loop lands the R-metric inside the acceptance window
// 10^(mu +/- 2.746 sigma) of the target level, and the write resets the
// drift clock. A worn-out (stuck) cell ignores programming; a cell that
// reaches its endurance on this write completes it and then fails stuck at
// the freshly written level (the common stuck-at-last-value model).
func (c *Cell) Program(rcfg drift.Config, level int, now float64, rng *rand.Rand) {
	if c.stuck {
		return
	}
	c.level = int8(level)
	c.logR0 = rcfg.SampleInitial(level, rng)
	c.alphaR = rcfg.SampleAlpha(level, rng)
	c.programmedAt = now
	c.writes++
	c.programmed = true
	c.disturbed = false
	if c.endurance > 0 && c.writes >= c.endurance {
		c.stuck = true
	}
}

// age converts absolute time to drift age, guarding against clock skew.
func (c *Cell) age(now float64) float64 {
	if !c.programmed || now <= c.programmedAt {
		return 0
	}
	return now - c.programmedAt
}

// LogR returns log10 of the cell's current R-metric value.
func (c *Cell) LogR(rcfg drift.Config, now float64) float64 {
	return rcfg.LogValueAt(c.logR0, c.alphaR, c.age(now)+rcfg.T0)
}

// LogM returns log10 of the cell's current M-metric value. The M-metric is
// a second readout of the same phase state: its initial value sits at the
// same relative position within the M window (the level-mean offset between
// the two configs) and its drift exponent scales by the configs' alpha
// ratio (1/7 for the paper's parameters).
func (c *Cell) LogM(rcfg, mcfg drift.Config, now float64) float64 {
	rl, ml := rcfg.Levels[c.level], mcfg.Levels[c.level]
	logM0 := c.logR0 + (ml.MuLog - rl.MuLog)
	alphaM := 0.0
	if rl.MuAlpha > 0 {
		alphaM = c.alphaR * ml.MuAlpha / rl.MuAlpha
	}
	return mcfg.LogValueAt(logM0, alphaM, c.age(now)+mcfg.T0)
}

// SenseR returns the level an R-metric (current-mode) readout reports now,
// including any latched read-disturb level drop.
func (c *Cell) SenseR(rcfg drift.Config, now float64) int {
	return c.disturbShift(rcfg.SenseLevel(c.LogR(rcfg, now)))
}

// SenseM returns the level an M-metric (voltage-mode) readout reports now.
// Read disturb alters the phase configuration itself, so both readouts of
// a disturbed cell drop a level.
func (c *Cell) SenseM(rcfg, mcfg drift.Config, now float64) int {
	return c.disturbShift(mcfg.SenseLevel(c.LogM(rcfg, mcfg, now)))
}

// Population is a cohort of cells programmed to the same level, used to
// study distribution shape over time (Figure 6).
type Population struct {
	rcfg  drift.Config
	cells []Cell
}

// NewPopulation programs n cells to level at time 0.
func NewPopulation(rcfg drift.Config, level, n int, rng *rand.Rand) (*Population, error) {
	if err := rcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	if level < 0 || level >= drift.LevelCount {
		return nil, fmt.Errorf("cell: level %d out of range", level)
	}
	if n <= 0 {
		return nil, fmt.Errorf("cell: population size %d must be positive", n)
	}
	p := &Population{rcfg: rcfg, cells: make([]Cell, n)}
	for i := range p.cells {
		p.cells[i].Program(rcfg, level, 0, rng)
	}
	return p, nil
}

// Size returns the population size.
func (p *Population) Size() int { return len(p.cells) }

// DriftedCells returns the indices of cells sensing at the wrong level at
// time now (R-metric).
func (p *Population) DriftedCells(now float64) []int {
	var out []int
	for i := range p.cells {
		c := &p.cells[i]
		if c.SenseR(p.rcfg, now) != c.Level() {
			out = append(out, i)
		}
	}
	return out
}

// RewriteCells re-programs exactly the given cells at time now — a
// differential write. The remaining cells keep drifting from their original
// program instants, which is how a differential write skews the line's
// resistance distribution toward the boundary (Figure 6b).
func (p *Population) RewriteCells(indices []int, now float64, rng *rand.Rand) {
	for _, i := range indices {
		if i >= 0 && i < len(p.cells) {
			p.cells[i].Program(p.rcfg, p.cells[i].Level(), now, rng)
		}
	}
}

// RewriteAll re-programs the whole cohort at time now — a full-line write
// restoring the normal distribution (Figure 6a after scrub).
func (p *Population) RewriteAll(now float64, rng *rand.Rand) {
	for i := range p.cells {
		p.cells[i].Program(p.rcfg, p.cells[i].Level(), now, rng)
	}
}

// Histogram bins the current log10 R values into `bins` equal-width buckets
// across [lo, hi), returning the counts. Values outside the range clamp to
// the edge bins so totals are preserved.
func (p *Population) Histogram(now float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(bins)
	for i := range p.cells {
		v := p.cells[i].LogR(p.rcfg, now)
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// GuardBandMass returns the fraction of the cohort currently within
// `fraction` of the distance between the level mean and the upper boundary
// (e.g. 0.25 = the last quarter before the boundary) — the "cells close to
// the boundary" population that makes differential writes dangerous.
func (p *Population) GuardBandMass(now float64, fraction float64) float64 {
	if len(p.cells) == 0 {
		return 0
	}
	level := p.cells[0].Level()
	bound := p.rcfg.UpperBoundary(level)
	mu := p.rcfg.Levels[level].MuLog
	threshold := bound - fraction*(bound-mu)
	var n int
	for i := range p.cells {
		if v := p.cells[i].LogR(p.rcfg, now); v >= threshold && v <= bound {
			n++
		}
	}
	return float64(n) / float64(len(p.cells))
}
