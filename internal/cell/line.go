package cell

import (
	"fmt"
	"math/rand"

	"readduo/internal/bch"
	"readduo/internal/drift"
)

// Line is one BCH-protected 64-byte MLC PCM line: 256 data cells plus the
// parity cells of the attached code, all subject to drift.
type Line struct {
	rcfg drift.Config
	mcfg drift.Config
	code *bch.Code

	dataCells   []Cell
	parityCells []Cell
	written     bool
}

// ReadMetric selects the sensing circuit for a line read.
type ReadMetric int

// Available line read metrics.
const (
	ReadR ReadMetric = iota + 1 // fast current sensing
	ReadM                       // drift-resilient voltage sensing
)

// String implements fmt.Stringer.
func (m ReadMetric) String() string {
	switch m {
	case ReadR:
		return "R-sensing"
	case ReadM:
		return "M-sensing"
	default:
		return fmt.Sprintf("ReadMetric(%d)", int(m))
	}
}

// ReadResult is the outcome of a BCH-protected line read.
type ReadResult struct {
	// Data is the 64-byte payload after any ECC correction.
	Data []byte
	// Status is the ECC decode outcome.
	Status bch.Status
	// CellErrors is the number of cells that sensed at the wrong level
	// (ground truth from the simulation, available because this is a
	// model; hardware only sees Status/Corrected).
	CellErrors int
	// Corrected is the number of bit errors the ECC repaired.
	Corrected int
}

// NewLine builds an unwritten line. The code must protect exactly 512 data
// bits (the 64-byte line of the paper).
func NewLine(rcfg, mcfg drift.Config, code *bch.Code) (*Line, error) {
	if err := rcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cell: R config: %w", err)
	}
	if err := mcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cell: M config: %w", err)
	}
	if code.DataBits()%2 != 0 || code.ParityBits()%2 != 0 {
		return nil, fmt.Errorf("cell: code bits (%d data, %d parity) must pack into 2-bit cells",
			code.DataBits(), code.ParityBits())
	}
	return &Line{
		rcfg:        rcfg,
		mcfg:        mcfg,
		code:        code,
		dataCells:   make([]Cell, code.DataBits()/2),
		parityCells: make([]Cell, code.ParityBits()/2),
	}, nil
}

// DataBytes returns the payload size of the line.
func (l *Line) DataBytes() int { return l.code.DataBytes() }

// Written reports whether the line holds data.
func (l *Line) Written() bool { return l.written }

// Write performs a full-line write at time now: every data and parity cell
// is re-programmed, restoring all programmed distributions.
func (l *Line) Write(data []byte, now float64, rng *rand.Rand) error {
	parity, err := l.code.Encode(data)
	if err != nil {
		return fmt.Errorf("cell: line write: %w", err)
	}
	programAll(l.dataCells, data, l.rcfg, now, rng)
	programAll(l.parityCells, parity, l.rcfg, now, rng)
	l.written = true
	return nil
}

// WriteDifferential programs only the cells whose target level differs from
// their currently programmed level, plus nothing else — the selective
// differential write of ReadDuo-Select. Unchanged cells keep their original
// drift clocks. It returns how many cells were programmed (the quantity
// that costs energy and endurance).
func (l *Line) WriteDifferential(data []byte, now float64, rng *rand.Rand) (int, error) {
	if !l.written {
		return 0, fmt.Errorf("cell: differential write to unwritten line")
	}
	parity, err := l.code.Encode(data)
	if err != nil {
		return 0, fmt.Errorf("cell: differential write: %w", err)
	}
	n := programChanged(l.dataCells, data, l.rcfg, now, rng)
	n += programChanged(l.parityCells, parity, l.rcfg, now, rng)
	return n, nil
}

// Read senses the whole line with the chosen metric at time now and decodes
// it through the attached BCH code.
func (l *Line) Read(metric ReadMetric, now float64) (ReadResult, error) {
	if !l.written {
		return ReadResult{}, fmt.Errorf("cell: read of unwritten line")
	}
	data, dErr := l.senseBuf(l.dataCells, metric, now)
	parity, pErr := l.senseBuf(l.parityCells, metric, now)
	res, err := l.code.Decode(data, parity)
	if err != nil {
		return ReadResult{}, fmt.Errorf("cell: line read: %w", err)
	}
	return ReadResult{
		Data:       data,
		Status:     res.Status,
		CellErrors: dErr + pErr,
		Corrected:  len(res.CorrectedBits),
	}, nil
}

// DriftErrorCount returns the ground-truth number of cells (data + parity)
// sensing at the wrong level under the chosen metric at time now.
func (l *Line) DriftErrorCount(metric ReadMetric, now float64) int {
	if !l.written {
		return 0
	}
	var n int
	for i := range l.dataCells {
		if l.senseLevel(&l.dataCells[i], metric, now) != l.dataCells[i].Level() {
			n++
		}
	}
	for i := range l.parityCells {
		if l.senseLevel(&l.parityCells[i], metric, now) != l.parityCells[i].Level() {
			n++
		}
	}
	return n
}

// Scrub models one scrub visit with rewrite threshold w at time now using
// metric for the error scan. The scan only sees what the ECC decoder
// reports — the corrected-bit count — exactly as the hardware scrub engine
// would: if the decoder repaired >= w bits (or w == 0, the unconditional
// variant), the corrected data is rewritten full-line. It reports whether a
// rewrite happened.
func (l *Line) Scrub(metric ReadMetric, w int, now float64, rng *rand.Rand) (bool, error) {
	if !l.written {
		return false, nil
	}
	res, err := l.Read(metric, now)
	if err != nil {
		return false, err
	}
	if res.Status == bch.StatusUncorrectable {
		// The line is already beyond repair; rewriting the sensed (wrong)
		// data would silently commit the corruption, so leave it for the
		// caller's error accounting.
		return false, nil
	}
	if w > 0 && res.Corrected < w {
		return false, nil
	}
	if err := l.Write(res.Data, now, rng); err != nil {
		return false, err
	}
	return true, nil
}

// TotalCellWrites sums the endurance counters across the line.
func (l *Line) TotalCellWrites() uint64 {
	var n uint64
	for i := range l.dataCells {
		n += l.dataCells[i].Writes()
	}
	for i := range l.parityCells {
		n += l.parityCells[i].Writes()
	}
	return n
}

// MaxCellWrites returns the highest per-cell write count — the wear-out
// determinant under perfect intra-line leveling assumptions.
func (l *Line) MaxCellWrites() uint64 {
	var m uint64
	for i := range l.dataCells {
		if w := l.dataCells[i].Writes(); w > m {
			m = w
		}
	}
	for i := range l.parityCells {
		if w := l.parityCells[i].Writes(); w > m {
			m = w
		}
	}
	return m
}

func (l *Line) senseLevel(c *Cell, metric ReadMetric, now float64) int {
	if metric == ReadM {
		return c.SenseM(l.rcfg, l.mcfg, now)
	}
	return c.SenseR(l.rcfg, now)
}

// senseBuf reads a cell region into a packed little-endian bit buffer and
// also returns the ground-truth wrong-level cell count.
func (l *Line) senseBuf(cells []Cell, metric ReadMetric, now float64) ([]byte, int) {
	buf := make([]byte, (len(cells)*2+7)/8)
	var wrong int
	for i := range cells {
		lv := l.senseLevel(&cells[i], metric, now)
		if lv != cells[i].Level() {
			wrong++
		}
		v := l.rcfg.DataForLevel(lv)
		bit0 := v & 1
		bit1 := v >> 1 & 1
		pos := 2 * i
		buf[pos/8] |= bit0 << (pos % 8)
		pos++
		buf[pos/8] |= bit1 << (pos % 8)
	}
	return buf, wrong
}

// programAll writes every cell of a region to the levels encoding buf.
func programAll(cells []Cell, buf []byte, rcfg drift.Config, now float64, rng *rand.Rand) {
	for i := range cells {
		cells[i].Program(rcfg, levelAt(buf, i, rcfg), now, rng)
	}
}

// programChanged writes only cells whose stored level differs from the
// target, returning how many were programmed.
func programChanged(cells []Cell, buf []byte, rcfg drift.Config, now float64, rng *rand.Rand) int {
	var n int
	for i := range cells {
		target := levelAt(buf, i, rcfg)
		if !cells[i].Programmed() || cells[i].Level() != target {
			cells[i].Program(rcfg, target, now, rng)
			n++
		}
	}
	return n
}

// levelAt extracts cell i's 2-bit value from a packed buffer and maps it to
// a storage level via the Gray code.
func levelAt(buf []byte, i int, rcfg drift.Config) int {
	pos := 2 * i
	bit0 := buf[pos/8] >> (pos % 8) & 1
	bit1 := buf[(pos+1)/8] >> ((pos + 1) % 8) & 1
	return rcfg.LevelForData(bit1<<1 | bit0)
}
