package cell

import (
	"bytes"
	"math/rand"
	"testing"

	"readduo/internal/bch"
	"readduo/internal/drift"
)

func newTestLine(t testing.TB) *Line {
	t.Helper()
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatalf("bch.New: %v", err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	return l
}

func randomLineData(rng *rand.Rand) []byte {
	buf := make([]byte, 64)
	rng.Read(buf)
	return buf
}

func TestLineWriteReadRoundTrip(t *testing.T) {
	l := newTestLine(t)
	rng := rand.New(rand.NewSource(1))
	data := randomLineData(rng)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for _, metric := range []ReadMetric{ReadR, ReadM} {
		res, err := l.Read(metric, 0)
		if err != nil {
			t.Fatalf("Read(%v): %v", metric, err)
		}
		if res.Status != bch.StatusClean {
			t.Errorf("fresh read status %v, want clean", res.Status)
		}
		if !bytes.Equal(res.Data, data) {
			t.Errorf("fresh read data mismatch")
		}
	}
}

func TestLineReadUnwrittenFails(t *testing.T) {
	l := newTestLine(t)
	if _, err := l.Read(ReadR, 0); err == nil {
		t.Error("read of unwritten line succeeded")
	}
	if _, err := l.WriteDifferential(make([]byte, 64), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("differential write to unwritten line succeeded")
	}
}

func TestLineDriftCorrectedByECC(t *testing.T) {
	// After a moderate age, R-sensing sees a few drifted cells; BCH-8
	// corrects them and the payload survives.
	rng := rand.New(rand.NewSource(2))
	var sawErrors bool
	for trial := 0; trial < 40; trial++ {
		l := newTestLine(t)
		data := randomLineData(rng)
		if err := l.Write(data, 0, rng); err != nil {
			t.Fatalf("Write: %v", err)
		}
		res, err := l.Read(ReadR, 64)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if res.CellErrors > 0 {
			sawErrors = true
		}
		if res.CellErrors <= 8 {
			if !bytes.Equal(res.Data, data) {
				t.Fatalf("payload corrupted with %d cell errors", res.CellErrors)
			}
		}
	}
	if !sawErrors {
		t.Error("no drift errors across 40 lines at 64 s; drift model suspicious")
	}
}

func TestLineMReadAtLongAge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := newTestLine(t)
	data := randomLineData(rng)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err := l.Read(ReadM, 640)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if res.Status == bch.StatusUncorrectable || !bytes.Equal(res.Data, data) {
		t.Errorf("M-read at 640 s failed: status %v, errors %d", res.Status, res.CellErrors)
	}
}

func TestLineDifferentialWriteCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := newTestLine(t)
	data := randomLineData(rng)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Rewriting identical data immediately: zero cells change level.
	n, err := l.WriteDifferential(data, 1, rng)
	if err != nil {
		t.Fatalf("WriteDifferential: %v", err)
	}
	if n != 0 {
		t.Errorf("identical differential write programmed %d cells, want 0", n)
	}
	// Flip one data byte: at most 4 data cells plus parity cells change.
	mod := append([]byte(nil), data...)
	mod[10] ^= 0xff
	n, err = l.WriteDifferential(mod, 2, rng)
	if err != nil {
		t.Fatalf("WriteDifferential: %v", err)
	}
	if n < 4 {
		t.Errorf("flipping 8 bits programmed only %d cells", n)
	}
	if n > 4+40 {
		t.Errorf("flipping one byte programmed %d cells, more than 4 data + 40 parity", n)
	}
	res, err := l.Read(ReadR, 2)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(res.Data, mod) {
		t.Error("differential write lost data")
	}
}

func TestLineScrubRewritePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := newTestLine(t)
	data := randomLineData(rng)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	writesBefore := l.TotalCellWrites()
	// W=0: unconditional rewrite even with no errors.
	rewrote, err := l.Scrub(ReadM, 0, 1, rng)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if !rewrote {
		t.Error("W=0 scrub skipped the rewrite")
	}
	if l.TotalCellWrites() <= writesBefore {
		t.Error("W=0 scrub did not program cells")
	}
	// W=1 right after a write: no errors, no rewrite.
	writesBefore = l.TotalCellWrites()
	rewrote, err = l.Scrub(ReadM, 1, 2, rng)
	if err != nil {
		t.Fatalf("Scrub: %v", err)
	}
	if rewrote || l.TotalCellWrites() != writesBefore {
		t.Error("W=1 scrub rewrote an error-free line")
	}
}

func TestLineScrubClearsAccumulatedDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Find a line that actually accumulates R errors by 640 s, then verify
	// a W=1 R-scrub rewrites and clears them.
	for trial := 0; trial < 60; trial++ {
		l := newTestLine(t)
		data := randomLineData(rng)
		if err := l.Write(data, 0, rng); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if l.DriftErrorCount(ReadR, 640) == 0 {
			continue
		}
		rewrote, err := l.Scrub(ReadR, 1, 640, rng)
		if err != nil {
			t.Fatalf("Scrub: %v", err)
		}
		if !rewrote {
			t.Fatal("scrub saw errors but did not rewrite")
		}
		if n := l.DriftErrorCount(ReadR, 640); n != 0 {
			t.Fatalf("%d errors remain after scrub rewrite", n)
		}
		res, err := l.Read(ReadR, 640)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatal("scrub corrupted payload")
		}
		return
	}
	t.Skip("no line accumulated R errors by 640 s in 60 trials (improbable)")
}

func TestLineWearCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := newTestLine(t)
	data := randomLineData(rng)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got, want := l.TotalCellWrites(), uint64(256+40); got != want {
		t.Errorf("TotalCellWrites after one full write = %d, want %d", got, want)
	}
	if got := l.MaxCellWrites(); got != 1 {
		t.Errorf("MaxCellWrites = %d, want 1", got)
	}
	if err := l.Write(data, 1, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := l.MaxCellWrites(); got != 2 {
		t.Errorf("MaxCellWrites after two full writes = %d, want 2", got)
	}
}

func TestNewLineRejectsOddCode(t *testing.T) {
	// 7 data bits cannot pack into 2-bit cells.
	code, err := bch.New(4, 2, 7)
	if err != nil {
		t.Fatalf("bch.New: %v", err)
	}
	if _, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code); err == nil {
		t.Error("odd-bit code accepted")
	}
}
