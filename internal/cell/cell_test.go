package cell

import (
	"math"
	"math/rand"
	"testing"

	"readduo/internal/drift"
)

func TestProgramSetsState(t *testing.T) {
	rcfg := drift.RMetricConfig()
	rng := rand.New(rand.NewSource(1))
	var c Cell
	if c.Programmed() {
		t.Error("zero-value cell reports programmed")
	}
	c.Program(rcfg, 2, 100, rng)
	if !c.Programmed() || c.Level() != 2 || c.Writes() != 1 {
		t.Errorf("after program: programmed=%v level=%d writes=%d", c.Programmed(), c.Level(), c.Writes())
	}
	c.Program(rcfg, 0, 200, rng)
	if c.Level() != 0 || c.Writes() != 2 {
		t.Errorf("after second program: level=%d writes=%d", c.Level(), c.Writes())
	}
}

func TestFreshCellSensesCorrectly(t *testing.T) {
	rcfg, mcfg := drift.RMetricConfig(), drift.MMetricConfig()
	rng := rand.New(rand.NewSource(2))
	for level := 0; level < drift.LevelCount; level++ {
		for i := 0; i < 500; i++ {
			var c Cell
			c.Program(rcfg, level, 50, rng)
			if got := c.SenseR(rcfg, 50); got != level {
				t.Fatalf("fresh R-sense level %d -> %d", level, got)
			}
			if got := c.SenseM(rcfg, mcfg, 50); got != level {
				t.Fatalf("fresh M-sense level %d -> %d", level, got)
			}
		}
	}
}

func TestDriftMonotoneAndMetricConsistency(t *testing.T) {
	rcfg, mcfg := drift.RMetricConfig(), drift.MMetricConfig()
	rng := rand.New(rand.NewSource(3))
	var c Cell
	c.Program(rcfg, 2, 0, rng)
	prevR := math.Inf(-1)
	for _, dt := range []float64{0, 1, 10, 100, 1000, 1e5} {
		r := c.LogR(rcfg, dt)
		if r < prevR-1e-12 {
			t.Fatalf("R value decreased at t=%v", dt)
		}
		prevR = r
		// M drifts strictly slower than R (relative to its own window).
		m := c.LogM(rcfg, mcfg, dt)
		driftR := r - c.LogR(rcfg, 0)
		driftM := m - c.LogM(rcfg, mcfg, 0)
		if driftM > driftR+1e-12 {
			t.Fatalf("M drifted more than R at t=%v (%v vs %v)", dt, driftM, driftR)
		}
	}
}

func TestRewriteResetsDriftClock(t *testing.T) {
	rcfg := drift.RMetricConfig()
	rng := rand.New(rand.NewSource(4))
	var c Cell
	c.Program(rcfg, 2, 0, rng)
	drifted := c.LogR(rcfg, 1e4) - c.LogR(rcfg, 0)
	if drifted <= 0 {
		t.Skip("cell drew a non-drifting alpha; statistical no-op")
	}
	c.Program(rcfg, 2, 1e4, rng)
	// Immediately after reprogramming, the value must be back inside the
	// program window.
	if got := c.SenseR(rcfg, 1e4); got != 2 {
		t.Errorf("freshly rewritten cell senses %d", got)
	}
}

func TestMSensingSurvivesWhereRSensingFails(t *testing.T) {
	// Statistical: at a very long age, some level-2 cells mis-sense under
	// R but all (practically) still sense correctly under M.
	rcfg, mcfg := drift.RMetricConfig(), drift.MMetricConfig()
	rng := rand.New(rand.NewSource(5))
	const n = 30000
	age := 1e5
	var rWrong, mWrong int
	for i := 0; i < n; i++ {
		var c Cell
		c.Program(rcfg, 2, 0, rng)
		if c.SenseR(rcfg, age) != 2 {
			rWrong++
		}
		if c.SenseM(rcfg, mcfg, age) != 2 {
			mWrong++
		}
	}
	if rWrong == 0 {
		t.Error("expected some R-sense drift errors at 1e5 s")
	}
	if mWrong > rWrong/100 {
		t.Errorf("M-sense errors %d not <<1%% of R-sense errors %d", mWrong, rWrong)
	}
}

func TestNewPopulationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewPopulation(drift.RMetricConfig(), -1, 10, rng); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewPopulation(drift.RMetricConfig(), 1, 0, rng); err == nil {
		t.Error("empty population accepted")
	}
	bad := drift.RMetricConfig()
	bad.T0 = 0
	if _, err := NewPopulation(bad, 1, 10, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPopulationDriftAndRewrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := NewPopulation(drift.RMetricConfig(), 2, 50000, rng)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	if p.Size() != 50000 {
		t.Fatalf("Size = %d", p.Size())
	}
	at := 640.0
	drifted := p.DriftedCells(at)
	if len(drifted) == 0 {
		t.Fatal("no drift errors at 640 s in 50k level-2 cells; model broken")
	}
	// Figure 6b: rewriting only the drifted cells leaves the guard band
	// crowded; Figure 6a: rewriting all cells empties it.
	p.RewriteCells(drifted, at, rng)
	if n := len(p.DriftedCells(at)); n != 0 {
		t.Errorf("%d cells still in error right after selective rewrite", n)
	}
	crowdedSelective := p.GuardBandMass(at, 0.25)

	p2, err := NewPopulation(drift.RMetricConfig(), 2, 50000, rng)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	p2.RewriteAll(at, rng)
	crowdedFull := p2.GuardBandMass(at, 0.25)
	if crowdedSelective <= crowdedFull*1.5 {
		t.Errorf("selective rewrite guard-band mass %v not clearly above full rewrite %v",
			crowdedSelective, crowdedFull)
	}
}

func TestPopulationHistogramTotalPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, err := NewPopulation(drift.RMetricConfig(), 1, 5000, rng)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	h := p.Histogram(100, 3.0, 5.0, 40)
	var total int
	for _, c := range h {
		total += c
	}
	if total != 5000 {
		t.Errorf("histogram total = %d, want 5000", total)
	}
	if got := p.Histogram(100, 5.0, 3.0, 10); len(got) != 10 {
		t.Errorf("degenerate range histogram length = %d", len(got))
	}
}
