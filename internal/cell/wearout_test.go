package cell

import (
	"bytes"
	"math/rand"
	"testing"

	"readduo/internal/bch"
	"readduo/internal/drift"
)

func TestSampleEndurance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := SampleEndurance(0, 0.25, rng); got != 0 {
		t.Errorf("zero median endurance = %d, want 0 (disabled)", got)
	}
	var min, max uint64 = 1 << 62, 0
	for i := 0; i < 5000; i++ {
		e := SampleEndurance(1e8, 0.25, rng)
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	// Lognormal(1e8, 0.25): essentially all mass within a factor ~3.
	if min < 2e7 || max > 5e8 {
		t.Errorf("endurance spread [%d, %d] implausible for sigma 0.25", min, max)
	}
	if min >= max {
		t.Error("no variance in sampled endurance")
	}
}

func TestCellWearsOutAndSticks(t *testing.T) {
	rcfg := drift.RMetricConfig()
	rng := rand.New(rand.NewSource(2))
	var c Cell
	c.SetEndurance(3)
	for i := 0; i < 3; i++ {
		c.Program(rcfg, i%2, float64(i), rng) // alternate levels 0/1
	}
	if !c.Stuck() {
		t.Fatal("cell not stuck after reaching endurance")
	}
	held := c.Level()
	// Further programming is ignored.
	c.Program(rcfg, 3, 10, rng)
	if c.Level() != held {
		t.Errorf("stuck cell reprogrammed from %d to %d", held, c.Level())
	}
	if c.Writes() != 3 {
		t.Errorf("writes advanced past endurance: %d", c.Writes())
	}
}

func TestWriteVerifiedReportsFailures(t *testing.T) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if l.CellCount() != 296 {
		t.Fatalf("CellCount = %d", l.CellCount())
	}
	data := make([]byte, 64)
	rng.Read(data)
	// First write on healthy cells: no failures.
	failed, err := l.WriteVerified(data, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("healthy line reported %d failures", len(failed))
	}
	// Exhaust two cells (their next program is their last), then demand a
	// different level from them: verify must flag exactly the mismatches.
	l.dataCells[0].SetEndurance(l.dataCells[0].Writes())
	l.dataCells[0].stuck = true
	l.dataCells[5].SetEndurance(l.dataCells[5].Writes())
	l.dataCells[5].stuck = true
	flipped := append([]byte(nil), data...)
	flipped[0] ^= 0x03 // change cell 0's two bits
	flipped[1] ^= 0x0c // change cell 5's two bits
	failed, err = l.WriteVerified(flipped, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("failures = %+v, want cells 0 and 5", failed)
	}
	for _, f := range failed {
		if f.Cell != 0 && f.Cell != 5 {
			t.Errorf("unexpected failed cell %d", f.Cell)
		}
		if lv, err := l.SensedLevel(f.Cell, ReadR, 1); err != nil || lv == f.Want {
			t.Errorf("cell %d: sensed %d (err %v) should differ from want %d", f.Cell, lv, err, f.Want)
		}
	}
}

func TestReadCorrectedRepairsStuckCells(t *testing.T) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 64)
	rng.Read(data)
	if _, err := l.WriteVerified(data, 0, rng); err != nil {
		t.Fatal(err)
	}
	// Stick 12 data cells at wrong levels (reprogram so the sensed
	// resistance actually moves) — beyond BCH-8 on its own.
	overrides := map[int]int{}
	for i := 0; i < 12; i++ {
		idx := i * 20
		want := l.dataCells[idx].Level()
		wrong := (want + 2) % 4
		l.dataCells[idx].Program(drift.RMetricConfig(), wrong, 0, rng)
		l.dataCells[idx].stuck = true
		overrides[idx] = want
	}
	// Unrepaired: uncorrectable (12 > 8).
	res, err := l.Read(ReadR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != bch.StatusUncorrectable {
		t.Fatalf("12 stuck cells decoded as %v", res.Status)
	}
	// With pointer repair the payload comes back.
	res, err = l.ReadCorrected(ReadR, 0, func(i int) (int, bool) {
		lv, ok := overrides[i]
		return lv, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == bch.StatusUncorrectable || !bytes.Equal(res.Data, data) {
		t.Errorf("corrected read failed: status %v", res.Status)
	}
	// Nil overrides fall back to the plain path.
	if _, err := l.ReadCorrected(ReadR, 0, nil); err != nil {
		t.Errorf("nil-override read: %v", err)
	}
}

func TestArmWearoutAndStuckCells(t *testing.T) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	l.ArmWearout(4, 0.3, rng)
	data := make([]byte, 64)
	for w := 0; w < 12; w++ {
		rng.Read(data)
		if _, err := l.WriteVerified(data, float64(w), rng); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.StuckCells()) == 0 {
		t.Error("no cells stuck after 12 writes at endurance ~4")
	}
}

func TestCellAtAndSensedLevelBounds(t *testing.T) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.SensedLevel(-1, ReadR, 0); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := l.SensedLevel(296, ReadR, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 64)
	if err := l.Write(data, 0, rng); err != nil {
		t.Fatal(err)
	}
	// Index 295 addresses the last parity cell.
	if _, err := l.SensedLevel(295, ReadM, 0); err != nil {
		t.Errorf("parity-region index rejected: %v", err)
	}
}

func TestLineAccessors(t *testing.T) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
	if err != nil {
		t.Fatal(err)
	}
	if l.DataBytes() != 64 || l.Written() {
		t.Errorf("fresh line: %d bytes, written=%v", l.DataBytes(), l.Written())
	}
	if ReadR.String() != "R-sensing" || ReadM.String() != "M-sensing" {
		t.Error("ReadMetric strings")
	}
	if ReadMetric(9).String() != "ReadMetric(9)" {
		t.Error("unknown metric string")
	}
}
