package cell

import (
	"fmt"
	"math/rand"

	"readduo/internal/drift"
	"readduo/internal/parallel"
)

// ShardedPopulation is Population's parallel form: the cohort is split
// into fixed shards, each owning a contiguous cell range and an
// independent RNG sub-stream derived as splitmix64(seed, shard). Every
// operation fans the per-cell work across a bounded worker pool and
// aggregates in shard order, so results are fully deterministic for a
// given (seed, shard count) — independent of the worker count and of
// goroutine scheduling — while the heavy kernels (programming, sensing
// sweeps, histogramming) scale with cores.
//
// Note the determinism contract is per (seed, shards): resharding the
// same seed re-partitions the RNG streams and yields a different (equally
// valid) cohort, which is why harnesses pin the shard count.
type ShardedPopulation struct {
	rcfg    drift.Config
	level   int
	shards  []popShard
	workers int
	size    int
}

type popShard struct {
	cells  []Cell
	rng    *rand.Rand
	offset int // global index of cells[0]
}

// splitmix64 is the standard SplitMix64 step, used to derive well-spread
// per-shard RNG seeds from (seed, shard).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewShardedPopulation programs n cells to level at time 0, split into
// `shards` independent sub-streams seeded from `seed`. workers bounds the
// pool (<= 0 picks the machine's parallelism); it affects wall-clock
// only, never results.
func NewShardedPopulation(rcfg drift.Config, level, n int, seed int64, shards, workers int) (*ShardedPopulation, error) {
	if err := rcfg.Validate(); err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	if level < 0 || level >= drift.LevelCount {
		return nil, fmt.Errorf("cell: level %d out of range", level)
	}
	if n <= 0 {
		return nil, fmt.Errorf("cell: population size %d must be positive", n)
	}
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("cell: shard count %d out of range 1..%d", shards, n)
	}
	sp := &ShardedPopulation{
		rcfg:    rcfg,
		level:   level,
		shards:  make([]popShard, shards),
		workers: workers,
		size:    n,
	}
	base, extra := n/shards, n%shards
	offset := 0
	for i := range sp.shards {
		sz := base
		if i < extra {
			sz++
		}
		sp.shards[i] = popShard{
			cells:  make([]Cell, sz),
			rng:    rand.New(rand.NewSource(int64(splitmix64(uint64(seed) + uint64(i))))),
			offset: offset,
		}
		offset += sz
	}
	sp.each(func(s *popShard) {
		for c := range s.cells {
			s.cells[c].Program(rcfg, level, 0, s.rng)
		}
	})
	return sp, nil
}

// each runs fn once per shard on the worker pool.
func (sp *ShardedPopulation) each(fn func(s *popShard)) {
	parallel.ForEach(sp.workers, len(sp.shards), func(i int) {
		fn(&sp.shards[i])
	})
}

// Size returns the population size.
func (sp *ShardedPopulation) Size() int { return sp.size }

// Shards returns the pinned shard count (part of the determinism key).
func (sp *ShardedPopulation) Shards() int { return len(sp.shards) }

// DriftedCells returns the global indices of cells sensing at the wrong
// level at time now (R-metric), ascending.
func (sp *ShardedPopulation) DriftedCells(now float64) []int {
	parts := make([][]int, len(sp.shards))
	parallel.ForEach(sp.workers, len(sp.shards), func(i int) {
		s := &sp.shards[i]
		var out []int
		for c := range s.cells {
			cell := &s.cells[c]
			if cell.SenseR(sp.rcfg, now) != cell.Level() {
				out = append(out, s.offset+c)
			}
		}
		parts[i] = out
	})
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// RewriteCells re-programs exactly the given global-index cells at time
// now — the differential write of Figure 6b. Each shard consumes its own
// RNG stream for its own cells, so the result is scheduling-independent.
func (sp *ShardedPopulation) RewriteCells(indices []int, now float64) {
	perShard := make([][]int, len(sp.shards))
	for _, gi := range indices {
		if gi < 0 || gi >= sp.size {
			continue
		}
		si := sp.shardOf(gi)
		perShard[si] = append(perShard[si], gi)
	}
	parallel.ForEach(sp.workers, len(sp.shards), func(i int) {
		s := &sp.shards[i]
		for _, gi := range perShard[i] {
			c := &s.cells[gi-s.offset]
			c.Program(sp.rcfg, c.Level(), now, s.rng)
		}
	})
}

// RewriteAll re-programs the whole cohort at time now (full-line write).
func (sp *ShardedPopulation) RewriteAll(now float64) {
	sp.each(func(s *popShard) {
		for c := range s.cells {
			s.cells[c].Program(sp.rcfg, s.cells[c].Level(), now, s.rng)
		}
	})
}

// shardOf locates the shard owning global index gi. Shard sizes differ by
// at most one, so the guess from uniform division is off by at most one
// step in either direction.
func (sp *ShardedPopulation) shardOf(gi int) int {
	i := gi * len(sp.shards) / sp.size
	if i >= len(sp.shards) {
		i = len(sp.shards) - 1
	}
	for i > 0 && gi < sp.shards[i].offset {
		i--
	}
	for i < len(sp.shards)-1 && gi >= sp.shards[i+1].offset {
		i++
	}
	return i
}

// Histogram bins the current log10 R values exactly as
// Population.Histogram, summing per-shard counts.
func (sp *ShardedPopulation) Histogram(now float64, lo, hi float64, bins int) []int {
	counts := make([]int, bins)
	if bins == 0 || hi <= lo {
		return counts
	}
	parts := make([][]int, len(sp.shards))
	w := (hi - lo) / float64(bins)
	parallel.ForEach(sp.workers, len(sp.shards), func(i int) {
		s := &sp.shards[i]
		local := make([]int, bins)
		for c := range s.cells {
			v := s.cells[c].LogR(sp.rcfg, now)
			b := int((v - lo) / w)
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			local[b]++
		}
		parts[i] = local
	})
	for _, local := range parts {
		for b, n := range local {
			counts[b] += n
		}
	}
	return counts
}

// GuardBandMass returns the fraction of the cohort within `fraction` of
// the mean-to-boundary distance, as Population.GuardBandMass.
func (sp *ShardedPopulation) GuardBandMass(now float64, fraction float64) float64 {
	bound := sp.rcfg.UpperBoundary(sp.level)
	mu := sp.rcfg.Levels[sp.level].MuLog
	threshold := bound - fraction*(bound-mu)
	counts := make([]int, len(sp.shards))
	parallel.ForEach(sp.workers, len(sp.shards), func(i int) {
		s := &sp.shards[i]
		var n int
		for c := range s.cells {
			if v := s.cells[c].LogR(sp.rcfg, now); v >= threshold && v <= bound {
				n++
			}
		}
		counts[i] = n
	})
	var n int
	for _, c := range counts {
		n += c
	}
	return float64(n) / float64(sp.size)
}
