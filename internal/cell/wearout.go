package cell

import (
	"fmt"
	"math"
	"math/rand"

	"readduo/internal/drift"
)

// Hard-error (endurance wearout) support. PCM cells fail permanently after
// a bounded number of SET/RESET cycles — typically modeled as a lognormal
// per-cell endurance around 1e8 writes. A worn-out cell is stuck at its
// last programmed level: the program-and-verify loop detects the failure
// (the cell never reaches the target window), which is what pointer-based
// hard-error schemes like ECP build on. This file adds wearout to Cell and
// verified writes to Line; package ecp supplies the correction structure.

// SetEndurance arms the cell's wearout: it fails permanently at the given
// write count. Zero disables wearout (the default for soft-error studies).
func (c *Cell) SetEndurance(writes uint64) {
	c.endurance = writes
}

// Stuck reports whether the cell has worn out.
func (c *Cell) Stuck() bool { return c.stuck }

// SampleEndurance draws a lognormal endurance: median `median` writes with
// sigma in natural-log units (0.2-0.3 is typical for PCM arrays).
func SampleEndurance(median float64, sigma float64, rng *rand.Rand) uint64 {
	if median <= 0 {
		return 0
	}
	v := median * math.Exp(sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return uint64(v)
}

// programChecked is Program plus the verify step: it reports whether the
// cell holds the target level afterwards — false exactly when a stuck cell
// refused a different level, which is how the P&V loop detects hard
// failures.
func (c *Cell) programChecked(rcfg drift.Config, level int, now float64, rng *rand.Rand) bool {
	c.Program(rcfg, level, now, rng)
	return int(c.level) == level
}

// ArmWearout samples a per-cell endurance for every cell in the line.
func (l *Line) ArmWearout(median, sigma float64, rng *rand.Rand) {
	for i := range l.dataCells {
		l.dataCells[i].SetEndurance(SampleEndurance(median, sigma, rng))
	}
	for i := range l.parityCells {
		l.parityCells[i].SetEndurance(SampleEndurance(median, sigma, rng))
	}
}

// StuckCells returns the indices (data cells first, then parity cells) of
// worn-out cells.
func (l *Line) StuckCells() []int {
	var out []int
	for i := range l.dataCells {
		if l.dataCells[i].Stuck() {
			out = append(out, i)
		}
	}
	for i := range l.parityCells {
		if l.parityCells[i].Stuck() {
			out = append(out, len(l.dataCells)+i)
		}
	}
	return out
}

// CellCount returns the line's total cell count (data + parity).
func (l *Line) CellCount() int { return len(l.dataCells) + len(l.parityCells) }

// VerifyFailure reports one cell whose program-and-verify loop could not
// land the target level (a hard failure).
type VerifyFailure struct {
	// Cell is the line cell index (data cells first, then parity).
	Cell int
	// Want is the level the write intended.
	Want int
}

// WriteVerified performs a full-line write with program-and-verify failure
// detection: it programs every cell and returns the cells whose verify
// failed — stuck cells that do not hold their target level. The caller
// (typically an ECP structure) must correct those on every read.
func (l *Line) WriteVerified(data []byte, now float64, rng *rand.Rand) ([]VerifyFailure, error) {
	parity, err := l.code.Encode(data)
	if err != nil {
		return nil, fmt.Errorf("cell: verified write: %w", err)
	}
	var failed []VerifyFailure
	for i := range l.dataCells {
		target := levelAt(data, i, l.rcfg)
		if !l.dataCells[i].programChecked(l.rcfg, target, now, rng) {
			failed = append(failed, VerifyFailure{Cell: i, Want: target})
		}
	}
	for i := range l.parityCells {
		target := levelAt(parity, i, l.rcfg)
		if !l.parityCells[i].programChecked(l.rcfg, target, now, rng) {
			failed = append(failed, VerifyFailure{Cell: len(l.dataCells) + i, Want: target})
		}
	}
	l.written = true
	return failed, nil
}

// ReadCorrected is Read with a hard-error override hook: before ECC
// decoding, each sensed cell level may be replaced by the correction
// structure (overrides returns the stored replacement level and true for
// repaired cells). Drift errors still flow to the BCH decoder as usual.
func (l *Line) ReadCorrected(metric ReadMetric, now float64, overrides func(cellIdx int) (int, bool)) (ReadResult, error) {
	if !l.written {
		return ReadResult{}, fmt.Errorf("cell: read of unwritten line")
	}
	if overrides == nil {
		return l.Read(metric, now)
	}
	data, dErr := l.senseBufCorrected(l.dataCells, metric, now, 0, overrides)
	parity, pErr := l.senseBufCorrected(l.parityCells, metric, now, len(l.dataCells), overrides)
	res, err := l.code.Decode(data, parity)
	if err != nil {
		return ReadResult{}, fmt.Errorf("cell: corrected read: %w", err)
	}
	return ReadResult{
		Data:       data,
		Status:     res.Status,
		CellErrors: dErr + pErr,
		Corrected:  len(res.CorrectedBits),
	}, nil
}

// senseBufCorrected mirrors senseBuf with per-cell overrides applied before
// bit packing; the wrong-level count excludes repaired cells.
func (l *Line) senseBufCorrected(cells []Cell, metric ReadMetric, now float64, base int, overrides func(int) (int, bool)) ([]byte, int) {
	buf := make([]byte, (len(cells)*2+7)/8)
	var wrong int
	for i := range cells {
		lv, repaired := overrides(base + i)
		if !repaired {
			lv = l.senseLevel(&cells[i], metric, now)
			if lv != cells[i].Level() {
				wrong++
			}
		}
		v := l.rcfg.DataForLevel(lv)
		pos := 2 * i
		buf[pos/8] |= (v & 1) << (pos % 8)
		pos++
		buf[pos/8] |= (v >> 1 & 1) << (pos % 8)
	}
	return buf, wrong
}

// SensedLevel reads one line cell (data-first indexing) through the chosen
// sensing circuit — what a pointer-based corrector compares against the
// intended level.
func (l *Line) SensedLevel(cellIdx int, metric ReadMetric, now float64) (int, error) {
	c, err := l.cellAt(cellIdx)
	if err != nil {
		return 0, err
	}
	return l.senseLevel(c, metric, now), nil
}

func (l *Line) cellAt(i int) (*Cell, error) {
	switch {
	case i < 0 || i >= l.CellCount():
		return nil, fmt.Errorf("cell: index %d out of range 0..%d", i, l.CellCount()-1)
	case i < len(l.dataCells):
		return &l.dataCells[i], nil
	default:
		return &l.parityCells[i-len(l.dataCells)], nil
	}
}
