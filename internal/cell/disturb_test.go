package cell

import (
	"math"
	"math/rand"
	"testing"

	"readduo/internal/drift"
)

// TestDisturbMCMatchesClosedForm is the read-disturb differential test:
// Monte-Carlo cells absorbing r reads at per-read disturb probability d
// must misread at the channel's closed-form rate — (LevelCount-1)/LevelCount
// of 1-(1-d)^r with uniform data — within z=4 binomial bounds.
func TestDisturbMCMatchesClosedForm(t *testing.T) {
	const (
		perLevel = 10_000
		d        = 0.002
		reads    = 50
	)
	rcfg := drift.RMetricConfig()
	rng := rand.New(rand.NewSource(42))
	cells := make([]Cell, drift.LevelCount*perLevel)
	for i := range cells {
		cells[i].Program(rcfg, i%drift.LevelCount, 0, rng)
	}
	for r := 0; r < reads; r++ {
		for i := range cells {
			cells[i].RecordRead(d, rng)
		}
	}
	// Sense at the program instant: age 0 means zero drift errors, so every
	// misread is a disturb error.
	errs := 0
	bottomErrs := 0
	for i := range cells {
		if got := cells[i].SenseR(rcfg, 0); got != cells[i].Level() {
			errs++
			if cells[i].Level() == 0 {
				bottomErrs++
			}
		}
	}
	if bottomErrs != 0 {
		t.Fatalf("bottom-level cells misread %d times; they have no state below", bottomErrs)
	}
	ch := drift.DisturbChannel{PerRead: d}
	n := float64(len(cells))
	want := ch.CellErrorProb(reads)
	got := float64(errs) / n
	sigma := math.Sqrt(want * (1 - want) / n)
	if z := math.Abs(got-want) / sigma; z > 4 {
		t.Errorf("disturb error rate %v vs closed form %v: z=%.2f > 4", got, want, z)
	}
}

// TestDisturbLatchAndClear pins the state machine: disturbance latches
// across reads, drops exactly one level on both readouts, and a program
// operation clears it.
func TestDisturbLatchAndClear(t *testing.T) {
	rcfg, mcfg := drift.RMetricConfig(), drift.MMetricConfig()
	rng := rand.New(rand.NewSource(7))
	var c Cell
	c.Program(rcfg, 2, 0, rng)
	c.RecordRead(1.01, rng) // certain disturb (internal prob compare, any d>=1)
	if !c.Disturbed() {
		t.Fatal("certain disturb did not latch")
	}
	if got := c.SenseR(rcfg, 0); got != 1 {
		t.Errorf("disturbed level-2 cell senses R level %d, want 1", got)
	}
	if got := c.SenseM(rcfg, mcfg, 0); got != 1 {
		t.Errorf("disturbed level-2 cell senses M level %d, want 1", got)
	}
	c.Program(rcfg, 2, 1, rng)
	if c.Disturbed() {
		t.Fatal("program did not clear disturbance")
	}
	if got := c.SenseR(rcfg, 1); got != 2 {
		t.Errorf("reprogrammed cell senses level %d, want 2", got)
	}
	// An unprogrammed cell never disturbs.
	var fresh Cell
	fresh.RecordRead(1.01, rng)
	if fresh.Disturbed() {
		t.Error("unprogrammed cell latched a disturb")
	}
	// Bottom level clamps at 0.
	var bottom Cell
	bottom.Program(rcfg, 0, 0, rng)
	bottom.RecordRead(1.01, rng)
	if got := bottom.SenseR(rcfg, 0); got != 0 {
		t.Errorf("disturbed bottom cell senses level %d, want 0", got)
	}
}
