package cell

import (
	"math"
	"math/rand"
	"testing"

	"readduo/internal/bch"
	"readduo/internal/drift"
	"readduo/internal/reliability"
)

// TestEmpiricalLERMatchesAnalytic is the cross-tier validation: the line
// error rates that Tables III/IV compute analytically must emerge from the
// Monte-Carlo cell population. We compare the per-line drift-error count
// distribution at a moderate age, where both tails are measurable.
func TestEmpiricalLERMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-validation")
	}
	an, err := reliability.NewAnalyzer(drift.RMetricConfig())
	if err != nil {
		t.Fatal(err)
	}
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12345))

	const (
		lines = 4000
		age   = 640.0
	)
	histogram := map[int]int{}
	payload := make([]byte, 64)
	for i := 0; i < lines; i++ {
		rng.Read(payload)
		l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Write(payload, 0, rng); err != nil {
			t.Fatal(err)
		}
		histogram[l.DriftErrorCount(ReadR, age)]++
	}

	// Empirical tail P[>E] vs the analytic binomial for E = 0..3.
	// Note the analytic model covers the 256 data cells; the simulated
	// line also exposes its 40 parity cells, so compare against a
	// 296-cell analyzer.
	an296, err := reliability.NewAnalyzer(drift.RMetricConfig(), reliability.WithCellsPerLine(296))
	if err != nil {
		t.Fatal(err)
	}
	_ = an
	for e := 0; e <= 3; e++ {
		var count int
		for errs, n := range histogram {
			if errs > e {
				count += n
			}
		}
		emp := float64(count) / lines
		want := an296.LER(e, age)
		sigma := math.Sqrt(want * (1 - want) / lines)
		if math.Abs(emp-want) > 5*sigma+0.004 {
			t.Errorf("P[>%d errors] at %gs: empirical %.4f vs analytic %.4f", e, age, emp, want)
		}
	}
}

// TestEmpiricalMMetricSuperiority confirms the cross-metric claim on the
// same physical lines: under M-sensing the same drifted lines read clean.
func TestEmpiricalMMetricSuperiority(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-validation")
	}
	code, err := bch.New(10, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(777))
	payload := make([]byte, 64)
	var rErrs, mErrs int
	const lines = 1500
	for i := 0; i < lines; i++ {
		rng.Read(payload)
		l, err := NewLine(drift.RMetricConfig(), drift.MMetricConfig(), code)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Write(payload, 0, rng); err != nil {
			t.Fatal(err)
		}
		rErrs += l.DriftErrorCount(ReadR, 640)
		mErrs += l.DriftErrorCount(ReadM, 640)
	}
	if rErrs == 0 {
		t.Fatal("no R-sensing drift errors at 640 s across 1500 lines")
	}
	if mErrs > rErrs/200 {
		t.Errorf("M-sensing errors %d not <<0.5%% of R-sensing errors %d", mErrs, rErrs)
	}
}
