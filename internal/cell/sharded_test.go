package cell

import (
	"math/rand"
	"reflect"
	"testing"

	"readduo/internal/drift"
)

func newSharded(t *testing.T, n, shards, workers int) *ShardedPopulation {
	t.Helper()
	sp, err := NewShardedPopulation(drift.RMetricConfig(), 2, n, 7, shards, workers)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestShardedDeterministicAcrossWorkers is the core contract: for a fixed
// (seed, shard count), results are bit-identical whatever the worker
// count — 1 worker (serial), shard-count workers, or oversubscribed.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const n, shards = 8000, 8
	type snapshot struct {
		drifted []int
		hist    []int
		guard   float64
	}
	run := func(workers int) snapshot {
		sp := newSharded(t, n, shards, workers)
		drifted := sp.DriftedCells(640)
		sp.RewriteCells(drifted, 640)
		return snapshot{
			drifted: drifted,
			hist:    sp.Histogram(1e4, 2.0, 5.0, 64),
			guard:   sp.GuardBandMass(1e4, 0.25),
		}
	}
	want := run(1)
	for _, workers := range []int{2, shards, 3 * shards, 0} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from serial run", workers)
		}
	}
}

// TestShardedSeedAndShardsAreTheKey: changing either seed or shard count
// changes the cohort; keeping both fixed reproduces it.
func TestShardedSeedAndShardsAreTheKey(t *testing.T) {
	cfg := drift.RMetricConfig()
	h := func(seed int64, shards int) []int {
		sp, err := NewShardedPopulation(cfg, 2, 4000, seed, shards, 4)
		if err != nil {
			t.Fatal(err)
		}
		return sp.Histogram(640, 2.0, 5.0, 64)
	}
	if !reflect.DeepEqual(h(7, 4), h(7, 4)) {
		t.Fatal("same (seed, shards) not reproducible")
	}
	if reflect.DeepEqual(h(7, 4), h(8, 4)) {
		t.Fatal("different seeds produced identical cohorts")
	}
}

// TestShardedMatchesPopulationStatistics: the sharded cohort is a
// different sample than the serial Population, but must agree on
// distribution-level statistics of the same physical model.
func TestShardedMatchesPopulationStatistics(t *testing.T) {
	const n = 20000
	cfg := drift.RMetricConfig()
	sp := newSharded(t, n, 8, 0)
	p, err := NewPopulation(cfg, 2, n, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []float64{64, 640, 1e4} {
		fs := float64(len(sp.DriftedCells(age))) / float64(n)
		fp := float64(len(p.DriftedCells(age))) / float64(n)
		// Binomial noise at n=20000 is ~0.35% one sigma near the observed
		// rates; 2% absolute covers five sigma with margin.
		if diff := fs - fp; diff > 0.02 || diff < -0.02 {
			t.Errorf("age %g: sharded drift fraction %.4f vs serial %.4f", age, fs, fp)
		}
		gs, gp := sp.GuardBandMass(age, 0.25), p.GuardBandMass(age, 0.25)
		if diff := gs - gp; diff > 0.02 || diff < -0.02 {
			t.Errorf("age %g: sharded guard mass %.4f vs serial %.4f", age, gs, gp)
		}
	}
}

// TestShardedRewriteSkew reproduces the Figure 6 effect on the sharded
// kernel: rewriting only the drifted cells leaves the survivor skew, a
// full rewrite restores the fresh guard-band mass.
func TestShardedRewriteSkew(t *testing.T) {
	sp := newSharded(t, 20000, 8, 0)
	fresh := sp.GuardBandMass(1, 0.25)
	aged := sp.GuardBandMass(640, 0.25)
	if aged <= fresh {
		t.Fatalf("drift did not push mass toward the boundary: fresh %.4f aged %.4f", fresh, aged)
	}
	sp.RewriteCells(sp.DriftedCells(640), 640)
	diff := sp.GuardBandMass(640.001, 0.25)
	sp.RewriteAll(640.002)
	full := sp.GuardBandMass(640.003, 0.25)
	if full >= diff {
		t.Fatalf("full rewrite should shrink boundary mass below differential: full %.4f diff %.4f", full, diff)
	}
}

// TestShardedDriftedIndicesSorted: global indices come out ascending
// (shard-ordered concatenation of per-shard ascending runs).
func TestShardedDriftedIndicesSorted(t *testing.T) {
	sp := newSharded(t, 5000, 7, 0)
	drifted := sp.DriftedCells(1e4)
	if len(drifted) == 0 {
		t.Fatal("expected drifted cells at age 1e4")
	}
	for i := 1; i < len(drifted); i++ {
		if drifted[i] <= drifted[i-1] {
			t.Fatalf("indices not ascending at %d: %d then %d", i, drifted[i-1], drifted[i])
		}
	}
	if last := drifted[len(drifted)-1]; last >= sp.Size() {
		t.Fatalf("index %d out of range", last)
	}
}

// TestShardedUnevenShards exercises n % shards != 0 partitioning and the
// shardOf locator across boundaries.
func TestShardedUnevenShards(t *testing.T) {
	sp := newSharded(t, 1003, 7, 0)
	if sp.Size() != 1003 || sp.Shards() != 7 {
		t.Fatalf("size/shards = %d/%d", sp.Size(), sp.Shards())
	}
	for gi := 0; gi < 1003; gi++ {
		si := sp.shardOf(gi)
		s := &sp.shards[si]
		if gi < s.offset || gi >= s.offset+len(s.cells) {
			t.Fatalf("shardOf(%d) = %d owning [%d,%d)", gi, si, s.offset, s.offset+len(s.cells))
		}
	}
	// Rewriting every cell through the global-index path must touch all.
	all := make([]int, 1003)
	for i := range all {
		all[i] = i
	}
	sp.RewriteCells(all, 10)
	for i := range sp.shards {
		for c := range sp.shards[i].cells {
			if w := sp.shards[i].cells[c].Writes(); w != 2 {
				t.Fatalf("cell %d/%d has %d writes, want 2", i, c, w)
			}
		}
	}
}
