package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"readduo/internal/sim"
	"readduo/internal/trace"
)

func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	gcc, ok := trace.ByName("gcc")
	if !ok {
		t.Fatal("gcc missing")
	}
	hmmer, ok := trace.ByName("hmmer")
	if !ok {
		t.Fatal("hmmer missing")
	}
	m, err := Runner{Budget: 40_000, Seed: 3}.RunMatrix(
		[]trace.Benchmark{gcc, hmmer},
		[]sim.Scheme{sim.Ideal(), sim.MMetric(), sim.TLC()},
	)
	if err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	return m
}

func TestRunMatrixShape(t *testing.T) {
	m := smallMatrix(t)
	if len(m.Benchmarks) != 2 || len(m.Schemes) != 3 {
		t.Fatalf("matrix %dx%d", len(m.Benchmarks), len(m.Schemes))
	}
	for i := range m.Results {
		for j, r := range m.Results[i] {
			if r == nil {
				t.Fatalf("missing result %d/%d", i, j)
			}
			if r.Scheme != m.Schemes[j] || r.Benchmark != m.Benchmarks[i] {
				t.Errorf("result labels %s/%s at %d/%d", r.Scheme, r.Benchmark, i, j)
			}
		}
	}
}

func TestRunMatrixValidation(t *testing.T) {
	if _, err := (Runner{}).RunMatrix(nil, []sim.Scheme{sim.Ideal()}); err == nil {
		t.Error("empty benchmarks accepted")
	}
	gcc, _ := trace.ByName("gcc")
	if _, err := (Runner{}).RunMatrix([]trace.Benchmark{gcc}, nil); err == nil {
		t.Error("empty schemes accepted")
	}
}

func TestNormalized(t *testing.T) {
	m := smallMatrix(t)
	rows, means, err := m.Normalized("Ideal", ExecTime)
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	for i := range rows {
		if rows[i][0] != 1.0 {
			t.Errorf("reference column row %d = %v, want 1", i, rows[i][0])
		}
		// M-metric must be slower than Ideal everywhere.
		if rows[i][1] < 1.0 {
			t.Errorf("M-metric normalized %v < 1 on %s", rows[i][1], m.Benchmarks[i])
		}
	}
	if means[0] != 1.0 {
		t.Errorf("reference mean = %v", means[0])
	}
	if _, _, err := m.Normalized("nope", ExecTime); err == nil {
		t.Error("unknown reference accepted")
	}
}

func TestEDAPMatrix(t *testing.T) {
	m := smallMatrix(t)
	edap, err := m.EDAPMatrix("TLC", false)
	if err != nil {
		t.Fatalf("EDAPMatrix: %v", err)
	}
	if edap["TLC"] != 1.0 {
		t.Errorf("TLC self-normalized to %v", edap["TLC"])
	}
	// The MLC schemes have a ~0.77x area factor, so at comparable time and
	// energy their EDAP must undercut TLC.
	if edap["Ideal"] >= 1.0 {
		t.Errorf("Ideal EDAP %v not below TLC", edap["Ideal"])
	}
	if _, err := m.EDAPMatrix("nope", false); err == nil {
		t.Error("unknown reference accepted")
	}
	sys, err := m.EDAPMatrix("TLC", true)
	if err != nil {
		t.Fatalf("system EDAPMatrix: %v", err)
	}
	if sys["TLC"] != 1.0 {
		t.Errorf("system TLC self-normalized to %v", sys["TLC"])
	}
}

func TestRelativeLifetime(t *testing.T) {
	m := smallMatrix(t)
	life, err := m.RelativeLifetime("Ideal")
	if err != nil {
		t.Fatalf("RelativeLifetime: %v", err)
	}
	if life["Ideal"] != 1.0 {
		t.Errorf("Ideal self lifetime = %v", life["Ideal"])
	}
	// TLC spreads the same demand writes over more cells per line and
	// writes more cells per line write: per-cell wear matches Ideal.
	if life["TLC"] < 0.95 || life["TLC"] > 1.05 {
		t.Errorf("TLC relative lifetime = %v, want ~1", life["TLC"])
	}
}

func TestWriteTables(t *testing.T) {
	m := smallMatrix(t)
	rows, means, err := m.Normalized("Ideal", ExecTime)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNormalizedTable(&buf, "test table", m, rows, means); err != nil {
		t.Fatalf("WriteNormalizedTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"test table", "gcc", "hmmer", "MEAN", "M-metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteKeyValueTable(&buf, "kv", m.Schemes, map[string]float64{"Ideal": 1}); err != nil {
		t.Fatalf("WriteKeyValueTable: %v", err)
	}
	if !strings.Contains(buf.String(), "Ideal") {
		t.Error("kv table missing entry")
	}
}

func TestRunnerConfigureHook(t *testing.T) {
	gcc, _ := trace.ByName("gcc")
	var saw bool
	r := Runner{Budget: 20_000, Seed: 1, Configure: func(c *sim.Config) {
		saw = true
		c.CPU.MLP = 1
	}}
	if _, err := r.RunMatrix([]trace.Benchmark{gcc}, []sim.Scheme{sim.Ideal()}); err != nil {
		t.Fatalf("RunMatrix: %v", err)
	}
	if !saw {
		t.Error("Configure hook not invoked")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1234567 * time.Nanosecond); got != "1.235ms" {
		t.Errorf("FormatDuration = %q", got)
	}
}
