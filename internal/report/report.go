// Package report runs scheme x workload evaluation matrices and renders
// the tabular reports behind the paper's figures. It is shared by the
// command-line tools (cmd/readduo-sim, cmd/edap, cmd/sweeps) and the
// benchmark harness at the repository root.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"readduo/internal/metrics"
	"readduo/internal/sim"
	"readduo/internal/telemetry"
	"readduo/internal/trace"
)

// Runner configures evaluation runs.
type Runner struct {
	// Budget is the per-core instruction budget; zero selects the
	// default.
	Budget uint64
	// Seed drives all random streams.
	Seed int64
	// Telemetry, when non-nil, receives every run's engine probes.
	Telemetry *telemetry.Registry
	// Configure, when non-nil, post-processes each run's configuration.
	Configure func(*sim.Config)
}

// Matrix holds the results of a scheme x workload sweep.
type Matrix struct {
	Benchmarks []string
	Schemes    []string
	// Results[b][s] pairs Benchmarks[b] with Schemes[s].
	Results [][]*sim.Result
}

// RunMatrix evaluates every scheme on every workload.
func (r Runner) RunMatrix(benches []trace.Benchmark, schemes []sim.Scheme) (*Matrix, error) {
	if len(benches) == 0 || len(schemes) == 0 {
		return nil, fmt.Errorf("report: empty matrix")
	}
	m := &Matrix{
		Benchmarks: make([]string, len(benches)),
		Schemes:    make([]string, len(schemes)),
		Results:    make([][]*sim.Result, len(benches)),
	}
	for j, s := range schemes {
		m.Schemes[j] = s.Name()
	}
	for i, b := range benches {
		m.Benchmarks[i] = b.Name
		m.Results[i] = make([]*sim.Result, len(schemes))
		for j, s := range schemes {
			cfg := sim.DefaultConfig(b)
			if r.Budget > 0 {
				cfg.CPU.InstrBudget = r.Budget
			}
			if r.Seed != 0 {
				cfg.Seed = r.Seed
			}
			cfg.Telemetry = r.Telemetry
			if r.Configure != nil {
				r.Configure(&cfg)
			}
			res, err := sim.Run(cfg, s)
			if err != nil {
				return nil, fmt.Errorf("report: %s/%s: %w", b.Name, s.Name(), err)
			}
			m.Results[i][j] = res
		}
	}
	return m, nil
}

// schemeIndex locates a scheme column.
func (m *Matrix) schemeIndex(name string) (int, error) {
	for j, s := range m.Schemes {
		if s == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("report: scheme %q not in matrix", name)
}

// Normalized extracts metric values normalized to the reference scheme's
// value per benchmark, plus the cross-suite mean per scheme.
func (m *Matrix) Normalized(refScheme string, metric func(*sim.Result) float64) (rows [][]float64, means []float64, err error) {
	ref, err := m.schemeIndex(refScheme)
	if err != nil {
		return nil, nil, err
	}
	rows = make([][]float64, len(m.Benchmarks))
	sums := make([]float64, len(m.Schemes))
	for i := range m.Benchmarks {
		rows[i] = make([]float64, len(m.Schemes))
		base := metric(m.Results[i][ref])
		if base == 0 {
			return nil, nil, fmt.Errorf("report: zero reference for %s", m.Benchmarks[i])
		}
		for j := range m.Schemes {
			rows[i][j] = metric(m.Results[i][j]) / base
			sums[j] += rows[i][j]
		}
	}
	means = make([]float64, len(m.Schemes))
	for j := range sums {
		means[j] = sums[j] / float64(len(m.Benchmarks))
	}
	return rows, means, nil
}

// Common metric extractors.

// ExecTime extracts execution time (Figure 9).
func ExecTime(r *sim.Result) float64 { return float64(r.ExecTime) }

// DynamicEnergy extracts total dynamic energy (Figure 10).
func DynamicEnergy(r *sim.Result) float64 { return r.Energy.Total() }

// SystemEnergy extracts dynamic plus static energy.
func SystemEnergy(r *sim.Result) float64 { return r.SystemEnergyPJ }

// CellWrites extracts total programmed cells (Figure 15's determinant).
func CellWrites(r *sim.Result) float64 { return float64(r.CellWrites) }

// EDAPMatrix computes per-scheme EDAP normalized to a reference scheme
// (Figure 11), averaging energy and delay across the suite.
func (m *Matrix) EDAPMatrix(refScheme string, system bool) (map[string]float64, error) {
	energyOf := DynamicEnergy
	if system {
		energyOf = SystemEnergy
	}
	raw := make(map[string]float64, len(m.Schemes))
	for j, name := range m.Schemes {
		var sum float64
		for i := range m.Benchmarks {
			r := m.Results[i][j]
			edap, err := metrics.EDAP(energyOf(r), r.ExecTime.Seconds(), r.AreaCellsPerLine)
			if err != nil {
				return nil, err
			}
			sum += edap
		}
		raw[name] = sum / float64(len(m.Benchmarks))
	}
	ref, ok := raw[refScheme]
	if !ok || ref == 0 {
		return nil, fmt.Errorf("report: bad EDAP reference %q", refScheme)
	}
	out := make(map[string]float64, len(raw))
	for name, v := range raw {
		out[name] = v / ref
	}
	return out, nil
}

// RelativeLifetime returns per-scheme lifetime relative to the reference
// (Figure 15), averaged across the suite. Wear is normalized per cell:
// a scheme with a larger per-line footprint (TLC) also has more cells to
// spread its writes across, so lifetime compares cell-writes divided by
// cells-per-line.
func (m *Matrix) RelativeLifetime(refScheme string) (map[string]float64, error) {
	ref, err := m.schemeIndex(refScheme)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(m.Schemes))
	for j, name := range m.Schemes {
		var sum float64
		for i := range m.Benchmarks {
			baseRes := m.Results[i][ref]
			res := m.Results[i][j]
			if res.CellWrites == 0 || res.AreaCellsPerLine == 0 || baseRes.AreaCellsPerLine == 0 {
				return nil, fmt.Errorf("report: %s/%s has no wear data", m.Benchmarks[i], name)
			}
			baseWear := float64(baseRes.CellWrites) / baseRes.AreaCellsPerLine
			wear := float64(res.CellWrites) / res.AreaCellsPerLine
			sum += baseWear / wear
		}
		out[name] = sum / float64(len(m.Benchmarks))
	}
	return out, nil
}

// WriteNormalizedTable renders a per-benchmark normalized table with a
// trailing mean row, in the layout of the paper's bar charts.
func WriteNormalizedTable(w io.Writer, title string, m *Matrix, rows [][]float64, means []float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	fmt.Fprintf(tw, "benchmark\t%s\n", strings.Join(m.Schemes, "\t"))
	for i, bench := range m.Benchmarks {
		cells := make([]string, len(rows[i]))
		for j, v := range rows[i] {
			cells[j] = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(tw, "%s\t%s\n", bench, strings.Join(cells, "\t"))
	}
	meanCells := make([]string, len(means))
	for j, v := range means {
		meanCells[j] = fmt.Sprintf("%.3f", v)
	}
	fmt.Fprintf(tw, "MEAN\t%s\n", strings.Join(meanCells, "\t"))
	return tw.Flush()
}

// WriteKeyValueTable renders a scheme -> value table in a stable order.
func WriteKeyValueTable(w io.Writer, title string, order []string, values map[string]float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))); err != nil {
		return err
	}
	for _, name := range order {
		if v, ok := values[name]; ok {
			fmt.Fprintf(tw, "%s\t%.3f\n", name, v)
		}
	}
	return tw.Flush()
}

// FormatDuration renders simulated durations compactly.
func FormatDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}
