// Package area models the storage-density and silicon-area side of the
// ReadDuo evaluation: the cells each scheme needs to store one protected
// 64-byte line (the density bars of Figure 11) and an NVSim-style subarray
// floorplan estimating the overhead of adding voltage-mode sense amplifiers
// next to the conventional current-mode ones (Table VII; the paper's
// revised-NVSim result is a 0.27% increase).
package area

import (
	"fmt"
	"math"
)

// LineBits is the payload of one memory line.
const LineBits = 512

// LineFootprint describes the cell cost of storing one 64-byte line under a
// scheme.
type LineFootprint struct {
	// MLCCells is the number of 2-bit MLC cells (data + BCH parity).
	MLCCells int
	// TLCCells is the number of tri-level cells (TLC scheme only).
	TLCCells int
	// SLCFlagBits is the per-line SLC flag storage (LWT vector+index),
	// held in the ECC chip.
	SLCFlagBits int
}

// EquivalentCells reduces the footprint to a single comparable cell count:
// one SLC flag bit occupies one cell-sized device, as do MLC and TLC cells
// (all are one access device + one GST element; they differ in bits stored,
// which is exactly the density question).
func (f LineFootprint) EquivalentCells() float64 {
	return float64(f.MLCCells + f.TLCCells + f.SLCFlagBits)
}

// MLCFootprint returns the line footprint of an MLC scheme protected by a
// BCH code with parityBits, carrying flagBits of SLC metadata (0 for
// non-LWT schemes).
func MLCFootprint(parityBits, flagBits int) (LineFootprint, error) {
	if parityBits < 0 || parityBits%2 != 0 {
		return LineFootprint{}, fmt.Errorf("area: parity bits %d must be even and nonnegative", parityBits)
	}
	if flagBits < 0 {
		return LineFootprint{}, fmt.Errorf("area: flag bits %d must be nonnegative", flagBits)
	}
	return LineFootprint{
		MLCCells:    (LineBits + parityBits) / 2,
		SLCFlagBits: flagBits,
	}, nil
}

// TLCFootprint returns the footprint of the Tri-Level-Cell baseline: the
// drift-prone state is dropped, each cell stores log2(3) bits, and the line
// carries a (72,64) SECDED code per 64-bit word — 576 bits total. Two
// tri-level cells hold three bits in the practical encoding, so the count
// rounds up to an even cell pair.
func TLCFootprint() LineFootprint {
	const codedBits = LineBits * 72 / 64 // 576
	cells := int(math.Ceil(float64(codedBits) * 2 / 3))
	if cells%2 != 0 {
		cells++
	}
	return LineFootprint{TLCCells: cells}
}

// Subarray is an NVSim-lite floorplan of one PCM subarray, used to estimate
// the relative area cost of the hybrid sense amplifier.
type Subarray struct {
	// Rows and Cols are the cell-array dimensions.
	Rows, Cols int
	// CellAreaF2 is the cell footprint in F^2 (4 for cross-point-style
	// PCM with a selection device).
	CellAreaF2 float64
	// FeatureNM is the process feature size in nanometers.
	FeatureNM float64
	// RowDecoderFrac and ColumnMuxFrac are peripheral areas as a fraction
	// of the cell-array area.
	RowDecoderFrac, ColumnMuxFrac float64
	// CurrentSAFrac is the conventional current-mode sense amplifier
	// strip (with its I-V converters) as a fraction of cell-array area.
	CurrentSAFrac float64
	// VoltageSAFrac is the added voltage-mode sensing strip. Voltage
	// sensing needs no I-V conversion stage and its comparators are
	// shared at a wider column mux, so the strip is far smaller.
	VoltageSAFrac float64
	// MatSubarrays is how many subarrays share one mat's inter-subarray
	// routing/control, which dilutes the per-subarray overhead at bank
	// level.
	MatSubarrays int
	// MatOverheadFrac is that shared routing/control area per mat,
	// relative to one subarray's cell-array area.
	MatOverheadFrac float64
}

// DefaultSubarray returns the configuration matching the paper's 2 GB bank
// of 32 mats x 16 subarrays, calibrated so the added voltage sensing costs
// ~0.27% of total area as the paper's revised NVSim reports.
func DefaultSubarray() Subarray {
	return Subarray{
		Rows: 1024, Cols: 1024,
		CellAreaF2: 4, FeatureNM: 45,
		RowDecoderFrac:  0.050,
		ColumnMuxFrac:   0.020,
		CurrentSAFrac:   0.080,
		VoltageSAFrac:   0.00313,
		MatSubarrays:    16,
		MatOverheadFrac: 0.35,
	}
}

// Validate checks the floorplan parameters.
func (s Subarray) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 || s.CellAreaF2 <= 0 || s.FeatureNM <= 0 {
		return fmt.Errorf("area: array geometry must be positive: %+v", s)
	}
	if s.RowDecoderFrac < 0 || s.ColumnMuxFrac < 0 || s.CurrentSAFrac < 0 || s.VoltageSAFrac < 0 {
		return fmt.Errorf("area: peripheral fractions must be nonnegative")
	}
	if s.MatSubarrays <= 0 || s.MatOverheadFrac < 0 {
		return fmt.Errorf("area: mat parameters must be positive")
	}
	return nil
}

// CellArrayUM2 returns the raw cell-array area in square micrometers.
func (s Subarray) CellArrayUM2() float64 {
	f := s.FeatureNM * 1e-3 // um
	return float64(s.Rows) * float64(s.Cols) * s.CellAreaF2 * f * f
}

// Occupancy reports the Table VII-style area decomposition of a subarray
// (plus its share of mat overhead), as fractions of the total.
type Occupancy struct {
	CellArray  float64
	RowDecoder float64
	ColumnMux  float64
	CurrentSA  float64
	VoltageSA  float64
	MatShare   float64
}

// Occupancy computes the decomposition with the hybrid (dual) sense
// amplifier in place.
func (s Subarray) Occupancy() (Occupancy, error) {
	if err := s.Validate(); err != nil {
		return Occupancy{}, err
	}
	matShare := s.MatOverheadFrac / float64(s.MatSubarrays)
	total := 1 + s.RowDecoderFrac + s.ColumnMuxFrac + s.CurrentSAFrac + s.VoltageSAFrac + matShare
	return Occupancy{
		CellArray:  1 / total,
		RowDecoder: s.RowDecoderFrac / total,
		ColumnMux:  s.ColumnMuxFrac / total,
		CurrentSA:  s.CurrentSAFrac / total,
		VoltageSA:  s.VoltageSAFrac / total,
		MatShare:   matShare / total,
	}, nil
}

// HybridOverhead returns the fractional area increase of adding the
// voltage-mode sensing strip to a conventional current-sensing design —
// the paper's 0.27% headline from revised NVSim.
func (s Subarray) HybridOverhead() (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	matShare := s.MatOverheadFrac / float64(s.MatSubarrays)
	base := 1 + s.RowDecoderFrac + s.ColumnMuxFrac + s.CurrentSAFrac + matShare
	return s.VoltageSAFrac / base, nil
}
