package area

import (
	"math"
	"testing"
)

func TestMLCFootprint(t *testing.T) {
	// BCH-8 over GF(2^10): 80 parity bits -> (512+80)/2 = 296 MLC cells.
	f, err := MLCFootprint(80, 0)
	if err != nil {
		t.Fatalf("MLCFootprint: %v", err)
	}
	if f.MLCCells != 296 || f.SLCFlagBits != 0 {
		t.Errorf("footprint = %+v, want 296 MLC cells", f)
	}
	// LWT-4 adds 4+2 = 6 SLC flag bits.
	f, err = MLCFootprint(80, 6)
	if err != nil {
		t.Fatalf("MLCFootprint: %v", err)
	}
	if f.EquivalentCells() != 302 {
		t.Errorf("LWT-4 equivalent cells = %v, want 302", f.EquivalentCells())
	}
}

func TestMLCFootprintValidation(t *testing.T) {
	if _, err := MLCFootprint(-2, 0); err == nil {
		t.Error("negative parity accepted")
	}
	if _, err := MLCFootprint(81, 0); err == nil {
		t.Error("odd parity bit count accepted")
	}
	if _, err := MLCFootprint(80, -1); err == nil {
		t.Error("negative flag bits accepted")
	}
}

func TestTLCFootprintDensityPenalty(t *testing.T) {
	tlc := TLCFootprint()
	// 576 SECDED-coded bits at 1.5 bits per cell -> 384 cells.
	if tlc.TLCCells != 384 {
		t.Errorf("TLC cells = %d, want 384", tlc.TLCCells)
	}
	mlc, err := MLCFootprint(80, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The MLC schemes must be denser than TLC — the density win ReadDuo
	// preserves (Figure 11's cells-per-line comparison).
	if mlc.EquivalentCells() >= tlc.EquivalentCells() {
		t.Errorf("MLC footprint %v not denser than TLC %v",
			mlc.EquivalentCells(), tlc.EquivalentCells())
	}
	ratio := mlc.EquivalentCells() / tlc.EquivalentCells()
	if ratio < 0.70 || ratio > 0.85 {
		t.Errorf("MLC/TLC cell ratio = %v, want ~0.75-0.80", ratio)
	}
}

func TestSubarrayValidate(t *testing.T) {
	if err := DefaultSubarray().Validate(); err != nil {
		t.Fatalf("default subarray invalid: %v", err)
	}
	bad := DefaultSubarray()
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rows accepted")
	}
	bad = DefaultSubarray()
	bad.CurrentSAFrac = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative SA fraction accepted")
	}
	bad = DefaultSubarray()
	bad.MatSubarrays = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero mat subarrays accepted")
	}
}

func TestOccupancySumsToOne(t *testing.T) {
	occ, err := DefaultSubarray().Occupancy()
	if err != nil {
		t.Fatalf("Occupancy: %v", err)
	}
	sum := occ.CellArray + occ.RowDecoder + occ.ColumnMux + occ.CurrentSA + occ.VoltageSA + occ.MatShare
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("occupancy fractions sum to %v", sum)
	}
	if occ.CellArray < 0.8 {
		t.Errorf("cell array occupies %v, want the dominant share", occ.CellArray)
	}
	if occ.VoltageSA >= occ.CurrentSA {
		t.Error("voltage SA strip must be smaller than the current-mode strip")
	}
}

// TestHybridOverheadMatchesPaper pins the Table VII headline: adding the
// voltage-mode sensing to every subarray costs ~0.27% of bank area.
func TestHybridOverheadMatchesPaper(t *testing.T) {
	ovh, err := DefaultSubarray().HybridOverhead()
	if err != nil {
		t.Fatalf("HybridOverhead: %v", err)
	}
	if ovh < 0.0022 || ovh > 0.0032 {
		t.Errorf("hybrid S/A overhead = %.4f, want ~0.0027 (paper: 0.27%%)", ovh)
	}
}

func TestCellArrayArea(t *testing.T) {
	s := DefaultSubarray()
	got := s.CellArrayUM2()
	// 1024*1024 cells * 4F^2 at F=45nm = 1024^2 * 4 * 0.045^2 um^2.
	want := 1024 * 1024 * 4 * 0.045 * 0.045
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("CellArrayUM2 = %v, want %v", got, want)
	}
}
