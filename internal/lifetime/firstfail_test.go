package lifetime

import (
	"math"
	"testing"
)

// minQuantile returns the q-quantile of the first-failure time — the
// minimum of cfg.Cells iid lognormal lifetimes. With per-cell CDF
// F(x) = Phi(ln(x*wear/median)/sigma), the minimum's CDF is
// 1-(1-F(x))^n, so its q-quantile is F^{-1}(1-(1-q)^{1/n}).
func minQuantile(cfg MCConfig, q float64) float64 {
	pq := 1 - math.Pow(1-q, 1/float64(cfg.Cells))
	z := math.Sqrt2 * math.Erfinv(2*pq-1)
	return cfg.MedianEndurance * math.Exp(cfg.Sigma*z) / cfg.WearRate
}

// TestFirstFailOrderStatistic pins FirstFailSeconds to its closed-form
// sampling distribution. The aggregate quantiles (median, p01, mean) are
// covered by TestSimulateMCMatchesLognormalTheory; the first failure is
// the one statistic those checks cannot reach — it is an extreme order
// statistic, four sigma into the per-cell tail for this population size —
// and it is also the quantity the hard-error analysis actually consumes
// (the horizon at which ECP must take over). Each Monte-Carlo run yields
// one draw of min(n lifetimes); across independent seeds those draws must
// (a) all land inside the distribution's central 1-2e-4 bracket and
// (b) reproduce the min-CDF at interior quantiles to a z=4 binomial bound.
func TestFirstFailOrderStatistic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo differential; run without -short")
	}
	cfg := MCConfig{
		Cells:           20_000,
		MedianEndurance: 1e8,
		Sigma:           0.25,
		WearRate:        1e-3,
		Shards:          8,
		Workers:         2,
	}
	const (
		runs = 40
		z    = 4.0
	)
	mins := make([]float64, runs)
	for i := range mins {
		cfg.Seed = int64(1000 + i)
		res, err := SimulateMC(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		mins[i] = res.FirstFailSeconds
	}

	// Every draw inside the [1e-4, 1-1e-4] bracket of the min
	// distribution: ~0.8% chance of any excursion across all 40 runs,
	// frozen by the fixed seeds.
	lo, hi := minQuantile(cfg, 1e-4), minQuantile(cfg, 1-1e-4)
	for i, m := range mins {
		if m < lo || m > hi {
			t.Errorf("seed %d: FirstFail %.4g s outside closed-form bracket [%.4g, %.4g]",
				1000+i, m, lo, hi)
		}
	}

	// The empirical CDF of the 40 minima must track the closed-form
	// min-CDF at interior quantiles (binomial CI + continuity).
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := minQuantile(cfg, q)
		below := 0
		for _, m := range mins {
			if m <= x {
				below++
			}
		}
		emp := float64(below) / runs
		bound := z*math.Sqrt(q*(1-q)/runs) + 0.5/runs
		if diff := math.Abs(emp - q); diff > bound {
			t.Errorf("min-CDF at q=%.2f: empirical %.3f (|diff| %.3f > bound %.3f)",
				q, emp, diff, bound)
		}
	}
}
