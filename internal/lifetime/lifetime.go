// Package lifetime converts write-traffic statistics into PCM endurance
// projections (the paper's Figure 15). PCM cells wear out after a bounded
// number of SET/RESET cycles; with ideal wear-leveling the chip's lifetime
// is inversely proportional to the average cell-write rate, so every scrub
// rewrite and R-M-read conversion shortens life while selective
// differential writes extend it.
package lifetime

import (
	"fmt"
	"time"
)

// DefaultEndurance is the per-cell write endurance assumed for MLC PCM
// (10^8 program cycles, the figure commonly used for MLC GST).
const DefaultEndurance = 1e8

// Model projects lifetime from accumulated cell-write counts.
type Model struct {
	// EndurancePerCell is the number of programs a cell survives.
	EndurancePerCell float64
	// TotalCells is the cell population the writes spread across under
	// ideal wear-leveling.
	TotalCells float64
}

// NewModel validates and builds a Model.
func NewModel(endurance, totalCells float64) (*Model, error) {
	if endurance <= 0 || totalCells <= 0 {
		return nil, fmt.Errorf("lifetime: endurance %v and cells %v must be positive", endurance, totalCells)
	}
	return &Model{EndurancePerCell: endurance, TotalCells: totalCells}, nil
}

// WearRate returns average cell programs per cell-second for a run that
// issued cellWrites programs over duration.
func (m *Model) WearRate(cellWrites uint64, duration time.Duration) (float64, error) {
	if duration <= 0 {
		return 0, fmt.Errorf("lifetime: duration %v must be positive", duration)
	}
	return float64(cellWrites) / m.TotalCells / duration.Seconds(), nil
}

// Project returns the projected chip lifetime under the observed write
// rate. A run with zero writes projects +Inf, reported as the maximum
// representable duration.
func (m *Model) Project(cellWrites uint64, duration time.Duration) (time.Duration, error) {
	rate, err := m.WearRate(cellWrites, duration)
	if err != nil {
		return 0, err
	}
	if rate == 0 {
		return time.Duration(1<<63 - 1), nil
	}
	seconds := m.EndurancePerCell / rate
	const maxSeconds = float64(1<<63-1) / float64(time.Second)
	if seconds >= maxSeconds {
		return time.Duration(1<<63 - 1), nil
	}
	return time.Duration(seconds * float64(time.Second)), nil
}

// Relative compares a scheme's lifetime against a baseline running the same
// workload for the same duration: the ratio of write rates inverted, e.g.
// 1.42 means the scheme's chip lives 42% longer than the baseline's.
func Relative(baselineCellWrites, schemeCellWrites uint64) (float64, error) {
	if schemeCellWrites == 0 {
		return 0, fmt.Errorf("lifetime: scheme issued no writes; relative lifetime undefined")
	}
	return float64(baselineCellWrites) / float64(schemeCellWrites), nil
}
