package lifetime

import (
	"math"
	"testing"
	"time"
)

func mcBase() MCConfig {
	return MCConfig{
		Cells:           50_000,
		MedianEndurance: DefaultEndurance,
		Sigma:           0.25,
		WearRate:        1.0 / 3600, // one program per cell-hour
		Seed:            1,
		Shards:          8,
	}
}

// TestMCDeterministicAcrossWorkers: same (seed, shards), any worker
// count, identical result.
func TestMCDeterministicAcrossWorkers(t *testing.T) {
	cfg := mcBase()
	cfg.Workers = 1
	want, err := SimulateMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 32, 0} {
		cfg.Workers = w
		got, err := SimulateMC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != serial %+v", w, got, want)
		}
	}
}

// TestMCMatchesLognormalTheory checks the sampled quantiles against the
// closed-form lognormal: median ~ median_endurance/rate, and the 1%
// quantile at exp(-2.326 sigma) of the median.
func TestMCMatchesLognormalTheory(t *testing.T) {
	cfg := mcBase()
	res, err := SimulateMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	medianWant := cfg.MedianEndurance / cfg.WearRate
	if r := res.MedianSeconds / medianWant; r < 0.98 || r > 1.02 {
		t.Errorf("median %v want ~%v (ratio %v)", res.MedianSeconds, medianWant, r)
	}
	p01Want := medianWant * math.Exp(-2.3263*cfg.Sigma)
	if r := res.P01Seconds / p01Want; r < 0.95 || r > 1.05 {
		t.Errorf("p01 %v want ~%v (ratio %v)", res.P01Seconds, p01Want, r)
	}
	meanWant := medianWant * math.Exp(cfg.Sigma*cfg.Sigma/2)
	if r := res.MeanSeconds / meanWant; r < 0.98 || r > 1.02 {
		t.Errorf("mean %v want ~%v (ratio %v)", res.MeanSeconds, meanWant, r)
	}
	if res.FirstFailSeconds >= res.P01Seconds || res.P01Seconds >= res.MedianSeconds {
		t.Errorf("ordering violated: first %v p01 %v median %v",
			res.FirstFailSeconds, res.P01Seconds, res.MedianSeconds)
	}
}

// TestMCAgainstAnalyticModel ties the kernel back to the analytic
// projection: with sigma=0 every cell dies exactly at Project's horizon.
func TestMCAgainstAnalyticModel(t *testing.T) {
	cfg := mcBase()
	cfg.Sigma = 0
	// One program per cell-second keeps the 1e8-write horizon well inside
	// time.Duration's representable range for the analytic comparison.
	cfg.WearRate = 1.0
	res, err := SimulateMC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(cfg.MedianEndurance, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One cell written at WearRate for an hour absorbs WearRate*3600 writes.
	dur := time.Hour
	writes := uint64(cfg.WearRate * dur.Seconds())
	proj, err := m.Project(writes, dur)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.MedianSeconds / proj.Seconds(); r < 0.999 || r > 1.001 {
		t.Errorf("sigma=0 MC median %v vs analytic projection %v", res.MedianSeconds, proj)
	}
	if res.FirstFailSeconds != res.MedianSeconds {
		t.Errorf("sigma=0 population not degenerate: first %v median %v",
			res.FirstFailSeconds, res.MedianSeconds)
	}
}

func TestMCConfigValidate(t *testing.T) {
	bad := []func(*MCConfig){
		func(c *MCConfig) { c.Cells = 0 },
		func(c *MCConfig) { c.MedianEndurance = 0 },
		func(c *MCConfig) { c.Sigma = -0.1 },
		func(c *MCConfig) { c.WearRate = 0 },
		func(c *MCConfig) { c.Shards = 0 },
		func(c *MCConfig) { c.Shards = 1; c.Cells = 0 },
	}
	for i, mutate := range bad {
		cfg := mcBase()
		mutate(&cfg)
		if _, err := SimulateMC(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := mcBase()
	if err := cfg.Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}
