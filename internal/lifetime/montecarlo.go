package lifetime

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"readduo/internal/parallel"
)

// The analytic Model treats endurance as a single per-cell constant; real
// PCM arrays wear out lognormally (sigma ~0.2-0.3 in ln units), so the
// first failures arrive well before the median cell dies. This file adds
// the Monte-Carlo companion: sample a population's per-cell endurance,
// convert each to a lifetime under the observed wear rate, and report the
// failure-time distribution. The kernel shards the population across a
// bounded worker pool with per-shard splitmix64 RNG sub-streams, making
// the result deterministic for a fixed (seed, shard count) regardless of
// worker count or scheduling.

// MCConfig parameterizes a Monte-Carlo endurance study.
type MCConfig struct {
	// Cells is the sampled population size.
	Cells int
	// MedianEndurance is the lognormal median per-cell write endurance.
	MedianEndurance float64
	// Sigma is the lognormal shape in natural-log units.
	Sigma float64
	// WearRate is the average cell-write rate (programs per cell-second),
	// e.g. Model.WearRate of a measured run.
	WearRate float64
	// Seed and Shards form the determinism key; Workers only bounds the
	// pool (<= 0 picks the machine's parallelism).
	Seed    int64
	Shards  int
	Workers int
}

// Validate checks the configuration.
func (c MCConfig) Validate() error {
	if c.Cells < 1 {
		return fmt.Errorf("lifetime: MC cell count %d must be positive", c.Cells)
	}
	if c.MedianEndurance <= 0 {
		return fmt.Errorf("lifetime: MC median endurance %v must be positive", c.MedianEndurance)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("lifetime: MC sigma %v must be non-negative", c.Sigma)
	}
	if c.WearRate <= 0 {
		return fmt.Errorf("lifetime: MC wear rate %v must be positive", c.WearRate)
	}
	if c.Shards < 1 || c.Shards > c.Cells {
		return fmt.Errorf("lifetime: MC shard count %d out of range 1..%d", c.Shards, c.Cells)
	}
	return nil
}

// MCResult summarizes the sampled failure-time distribution (seconds).
type MCResult struct {
	// FirstFailSeconds is the earliest cell death — the horizon at which
	// hard-error correction (ECP et al.) must take over.
	FirstFailSeconds float64
	// P01Seconds / MedianSeconds are the 1% and 50% failure quantiles.
	P01Seconds    float64
	MedianSeconds float64
	// MeanSeconds is the average cell lifetime.
	MeanSeconds float64
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SimulateMC samples the population and returns the failure-time summary.
func SimulateMC(cfg MCConfig) (MCResult, error) {
	return SimulateMCContext(context.Background(), cfg)
}

// SimulateMCContext is SimulateMC with cooperative cancellation: each
// shard polls a shared abort flag every few thousand cells and bails out,
// so a cancelled request stops burning cores within microseconds. Results
// are identical to SimulateMC when ctx is never cancelled — the abort
// flag never perturbs the RNG sub-streams.
func SimulateMCContext(ctx context.Context, cfg MCConfig) (MCResult, error) {
	if err := cfg.Validate(); err != nil {
		return MCResult{}, err
	}
	lifetimes := make([]float64, cfg.Cells)
	base, extra := cfg.Cells/cfg.Shards, cfg.Cells%cfg.Shards
	offsets := make([]int, cfg.Shards+1)
	for i := 0; i < cfg.Shards; i++ {
		sz := base
		if i < extra {
			sz++
		}
		offsets[i+1] = offsets[i] + sz
	}
	// One goroutine flips the flag on cancellation; shard bodies only
	// ever load it, so the fan-out stays contention-free.
	var aborted atomic.Bool
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				aborted.Store(true)
			case <-watchDone:
			}
		}()
	}
	const cancelStride = 1 << 12
	parallel.ForEach(cfg.Workers, cfg.Shards, func(i int) {
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(cfg.Seed) + uint64(i)))))
		for c := offsets[i]; c < offsets[i+1]; c++ {
			if (c-offsets[i])%cancelStride == 0 && aborted.Load() {
				return
			}
			endurance := cfg.MedianEndurance * math.Exp(cfg.Sigma*rng.NormFloat64())
			if endurance < 1 {
				endurance = 1
			}
			lifetimes[c] = endurance / cfg.WearRate
		}
	})
	if err := ctx.Err(); err != nil {
		return MCResult{}, fmt.Errorf("lifetime: MC aborted: %w", err)
	}
	sort.Float64s(lifetimes)
	var sum float64
	for _, v := range lifetimes {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(lifetimes)-1))
		return lifetimes[i]
	}
	return MCResult{
		FirstFailSeconds: lifetimes[0],
		P01Seconds:       q(0.01),
		MedianSeconds:    q(0.50),
		MeanSeconds:      sum / float64(len(lifetimes)),
	}, nil
}
