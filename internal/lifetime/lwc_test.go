package lifetime_test

import (
	"math"
	"testing"
	"time"

	"readduo/internal/lifetime"
	"readduo/internal/lwc"
)

// TestLWCLifetimeGainMatchesCostModel ties the LWC write-cost model to the
// lifetime projection: against a full-line-write baseline issuing the same
// demand writes, the relative lifetime gain must equal the cell-write
// ratio (n cells per full write vs E[update cost] per local write), both
// through lifetime.Relative and through the Model projections.
func TestLWCLifetimeGainMatchesCostModel(t *testing.T) {
	const (
		k, r   = 216, 16 // the simulator's data-cell geometry
		p      = 0.36    // per-cell change probability of a demand write
		writes = 100_000
	)
	c, err := lwc.New(k, r)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := lwc.ExpectedUpdateCost(k, r, p)
	if err != nil {
		t.Fatal(err)
	}
	fullLine := uint64(c.N())
	baseline := uint64(writes) * fullLine
	scheme := uint64(float64(writes) * cost)
	gain, err := lifetime.Relative(baseline, scheme)
	if err != nil {
		t.Fatal(err)
	}
	wantGain := float64(fullLine) / cost
	if math.Abs(gain-wantGain)/wantGain > 1e-4 {
		t.Errorf("relative lifetime gain %v, want cost ratio %v", gain, wantGain)
	}
	if gain <= 1 {
		t.Errorf("LWC local writes did not extend lifetime: gain %v", gain)
	}

	// The same ratio must come out of absolute projections.
	m, err := lifetime.NewModel(lifetime.DefaultEndurance, float64(c.N())*1e6)
	if err != nil {
		t.Fatal(err)
	}
	const dur = time.Second // any common duration cancels in the ratio
	lifeBase, err := m.Project(baseline, dur)
	if err != nil {
		t.Fatal(err)
	}
	lifeLWC, err := m.Project(scheme, dur)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(lifeLWC) / float64(lifeBase); math.Abs(ratio-gain)/gain > 1e-4 {
		t.Errorf("projected lifetime ratio %v disagrees with Relative %v", ratio, gain)
	}
}

// TestLWCLocalityTradeoff pins the shape of the cost model the write
// policy exposes to lifetime accounting: larger locality r means fewer
// parity cells but more parity writes per update, so expected update cost
// is monotone non-increasing in r while the codeword shrinks.
func TestLWCLocalityTradeoff(t *testing.T) {
	const k, p = 216, 0.36
	prevCost := math.Inf(1)
	prevN := 1 << 30
	for _, r := range []int{2, 4, 8, 16, 32, 64} {
		c, err := lwc.New(k, r)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := lwc.ExpectedUpdateCost(k, r, p)
		if err != nil {
			t.Fatal(err)
		}
		if cost > prevCost {
			t.Errorf("r=%d: expected cost %v rose above %v", r, cost, prevCost)
		}
		if c.N() > prevN {
			t.Errorf("r=%d: codeword grew to %d", r, c.N())
		}
		if cost <= float64(k)*p {
			t.Errorf("r=%d: cost %v below the data-cell floor %v", r, cost, float64(k)*p)
		}
		prevCost, prevN = cost, c.N()
	}
}
