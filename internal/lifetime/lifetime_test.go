package lifetime

import (
	"math"
	"testing"
	"time"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0, 100); err == nil {
		t.Error("zero endurance accepted")
	}
	if _, err := NewModel(1e8, 0); err == nil {
		t.Error("zero cells accepted")
	}
	if _, err := NewModel(1e8, 1e9); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestWearRateAndProjection(t *testing.T) {
	m, err := NewModel(1e8, 1e6) // 1M cells, 1e8 endurance
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 cell writes over 1 second -> 1 write/cell/sec -> lifetime 1e8 s.
	rate, err := m.WearRate(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-1) > 1e-12 {
		t.Errorf("WearRate = %v, want 1", rate)
	}
	life, err := m.Project(1e6, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life.Seconds()-1e8) > 1 {
		t.Errorf("Project = %v s, want 1e8 s", life.Seconds())
	}
}

func TestProjectZeroWrites(t *testing.T) {
	m, err := NewModel(1e8, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	life, err := m.Project(0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if life != time.Duration(1<<63-1) {
		t.Errorf("zero-write projection = %v, want max duration", life)
	}
}

func TestProjectInvalidDuration(t *testing.T) {
	m, err := NewModel(1e8, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Project(10, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := m.WearRate(10, -time.Second); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestRelative(t *testing.T) {
	// Scheme writing 70% of the baseline's cells lives 1/0.7 = 1.43x.
	rel, err := Relative(1000, 700)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel-1000.0/700) > 1e-12 {
		t.Errorf("Relative = %v, want %v", rel, 1000.0/700)
	}
	// Scheme writing more than baseline lives shorter.
	rel, err = Relative(1000, 1124)
	if err != nil {
		t.Fatal(err)
	}
	if rel >= 1 {
		t.Errorf("heavier writer relative lifetime = %v, want < 1", rel)
	}
	if _, err := Relative(1000, 0); err == nil {
		t.Error("zero scheme writes accepted")
	}
}
