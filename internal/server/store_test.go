package server

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"readduo/internal/backend"
	"readduo/internal/cache"
	"readduo/internal/campaign"
	"readduo/internal/telemetry"
)

// backendFunc adapts a function to backend.Backend, for fault-injection
// tests that need precise control over backend behavior.
type backendFunc func(ctx context.Context, key string, spec backend.Spec) ([]byte, error)

func (f backendFunc) Compute(ctx context.Context, key string, spec backend.Spec) ([]byte, error) {
	return f(ctx, key, spec)
}
func (f backendFunc) Depth() int   { return 0 }
func (f backendFunc) Close() error { return nil }

// newTestStore wires a store over a Local backend running eval, with a
// single in-heap cache tier.
func newTestStore(t *testing.T, workers, queue int, timeout time.Duration,
	eval backend.Evaluator) (*store, *campaign.Pool, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry("test")
	pool := campaign.NewPool(workers, queue, nil)
	t.Cleanup(pool.Close)
	be := backend.NewLocal(pool, eval, timeout)
	tiers := cache.NewTiered(nil, cache.NewLRU(1<<20))
	return newStore(context.Background(), be, tiers, reg), pool, reg
}

var testSpec = backend.Spec{Op: "test"}

func TestStoreCachesBytes(t *testing.T) {
	var computes atomic.Int32
	s, _, reg := newTestStore(t, 2, 2, time.Minute,
		func(context.Context, backend.Spec) ([]byte, error) {
			computes.Add(1)
			return []byte("{\"x\":42}\n"), nil
		})

	first, m1, err := s.do(context.Background(), "k", testSpec)
	if err != nil || m1.Cached {
		t.Fatalf("first do: meta=%+v err=%v", m1, err)
	}
	second, m2, err := s.do(context.Background(), "k", testSpec)
	if err != nil || !m2.Cached {
		t.Fatalf("second do: meta=%+v err=%v", m2, err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached bytes differ: %q vs %q", first, second)
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computes.Load())
	}
	if hits := reg.Sink("server").Counter("cache.hits").Value(); hits != 1 {
		t.Fatalf("cache.hits = %d, want 1", hits)
	}
}

func TestStoreSingleflightShares(t *testing.T) {
	var computes atomic.Int32
	release := make(chan struct{})
	s, _, reg := newTestStore(t, 2, 4, time.Minute,
		func(context.Context, backend.Spec) ([]byte, error) {
			computes.Add(1)
			<-release
			return []byte("\"shared\"\n"), nil
		})

	const callers = 6
	outs := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := s.do(context.Background(), "k", testSpec)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			outs[i] = out
		}(i)
	}
	// Wait until the one computation is running, then let it finish.
	deadline := time.Now().Add(2 * time.Second)
	for computes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the rest join the flight
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("caller %d bytes differ", i)
		}
	}
	if shared := reg.Sink("server").Counter("flight.shared").Value(); shared != callers-1 {
		t.Fatalf("flight.shared = %d, want %d", shared, callers-1)
	}
}

func TestStoreSaturationFailsFast(t *testing.T) {
	s, pool, reg := newTestStore(t, 1, 0, time.Minute,
		func(context.Context, backend.Spec) ([]byte, error) {
			t.Error("compute must not run on a saturated pool")
			return nil, nil
		})
	// Occupy the single worker so the unbuffered queue cannot admit.
	// Submit blocks until the worker picks the task up, so afterwards
	// the pool is deterministically saturated.
	block := make(chan struct{})
	defer close(block)
	if err := pool.Submit(context.Background(), func(int) { <-block }); err != nil {
		t.Fatalf("occupying worker: %v", err)
	}

	_, _, err := s.do(context.Background(), "k", testSpec)
	if !errors.Is(err, campaign.ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if rej := reg.Sink("server").Counter("compute.rejected").Value(); rej != 1 {
		t.Fatalf("compute.rejected = %d, want 1", rej)
	}
	// The failed flight must not wedge the key: after the worker frees
	// up, the same key computes fine.
}

func TestStoreComputeErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	s, _, _ := newTestStore(t, 1, 1, time.Minute,
		func(context.Context, backend.Spec) ([]byte, error) {
			if calls.Add(1) == 1 {
				return nil, boom
			}
			return []byte("\"ok\"\n"), nil
		})
	if _, _, err := s.do(context.Background(), "k", testSpec); !errors.Is(err, boom) {
		t.Fatalf("first do err = %v, want boom", err)
	}
	out, m, err := s.do(context.Background(), "k", testSpec)
	if err != nil || m.Cached {
		t.Fatalf("retry: meta=%+v err=%v", m, err)
	}
	if string(out) != "\"ok\"\n" {
		t.Fatalf("retry got %q", out)
	}
}

func TestStoreComputeTimeout(t *testing.T) {
	s, _, _ := newTestStore(t, 1, 1, 10*time.Millisecond,
		func(ctx context.Context, _ backend.Spec) ([]byte, error) {
			<-ctx.Done() // honor the compute deadline like the real kernels
			return nil, ctx.Err()
		})
	_, _, err := s.do(context.Background(), "k", testSpec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestStoreFailedComputeNeverPoisonsTiers drives a store with both an
// in-heap and a disk tier through a failing backend and verifies that
// neither tier holds an entry for the key afterwards — a fault must not
// be served from cache, not even across a restart via the disk tier.
func TestStoreFailedComputeNeverPoisonsTiers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "tier")
	disk, err := cache.OpenDisk(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	lru := cache.NewLRU(1 << 20)
	tiers := cache.NewTiered(nil, lru, disk)
	t.Cleanup(func() { tiers.Close() })

	boom := errors.New("node exploded")
	be := backendFunc(func(context.Context, string, backend.Spec) ([]byte, error) {
		return nil, boom
	})
	s := newStore(context.Background(), be, tiers, nil)

	if _, _, err := s.do(context.Background(), "k", testSpec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if lru.Len() != 0 || disk.Len() != 0 {
		t.Fatalf("failed compute cached: lru=%d disk=%d entries", lru.Len(), disk.Len())
	}
	if _, ok := tiers.Get("k"); ok {
		t.Fatal("failed compute served from cache")
	}
}

// TestStoreDiskTierSurvivesHeapEviction exercises the tiered path end to
// end: a value pushed out of a tiny heap tier is still served from disk
// and promoted back, byte-identical.
func TestStoreDiskTierSurvivesHeapEviction(t *testing.T) {
	disk, err := cache.OpenDisk(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Heap tier fits exactly one of our ~40-byte entries.
	lru := cache.NewLRU(64)
	tiers := cache.NewTiered(nil, lru, disk)
	t.Cleanup(func() { tiers.Close() })

	var computes atomic.Int32
	be := backendFunc(func(_ context.Context, key string, _ backend.Spec) ([]byte, error) {
		computes.Add(1)
		return []byte("{\"key\":\"" + key + "\"}\n"), nil
	})
	s := newStore(context.Background(), be, tiers, nil)

	first, _, err := s.do(context.Background(), "a", testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.do(context.Background(), "b", testSpec); err != nil {
		t.Fatal(err) // evicts "a" from the heap tier
	}
	again, m, err := s.do(context.Background(), "a", testSpec)
	if err != nil || !m.Cached {
		t.Fatalf("disk-tier read: meta=%+v err=%v", m, err)
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("disk tier bytes differ: %q vs %q", first, again)
	}
	if computes.Load() != 2 {
		t.Fatalf("computed %d times, want 2 (one per key)", computes.Load())
	}
}
