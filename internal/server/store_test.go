package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"readduo/internal/campaign"
	"readduo/internal/telemetry"
)

func newTestStore(t *testing.T, workers, queue int) (*store, *campaign.Pool, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry("test")
	pool := campaign.NewPool(workers, queue, nil)
	t.Cleanup(pool.Close)
	return newStore(context.Background(), pool, 1<<20, time.Minute, reg), pool, reg
}

func TestStoreCachesBytes(t *testing.T) {
	s, _, reg := newTestStore(t, 2, 2)
	var computes atomic.Int32
	compute := func(context.Context) (any, error) {
		computes.Add(1)
		return map[string]int{"x": 42}, nil
	}

	first, m1, err := s.do(context.Background(), "k", compute)
	if err != nil || m1.Cached {
		t.Fatalf("first do: meta=%+v err=%v", m1, err)
	}
	second, m2, err := s.do(context.Background(), "k", compute)
	if err != nil || !m2.Cached {
		t.Fatalf("second do: meta=%+v err=%v", m2, err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached bytes differ: %q vs %q", first, second)
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computes.Load())
	}
	if hits := reg.Sink("server").Counter("cache.hits").Value(); hits != 1 {
		t.Fatalf("cache.hits = %d, want 1", hits)
	}
}

func TestStoreSingleflightShares(t *testing.T) {
	s, _, reg := newTestStore(t, 2, 4)
	var computes atomic.Int32
	release := make(chan struct{})
	compute := func(context.Context) (any, error) {
		computes.Add(1)
		<-release
		return "shared", nil
	}

	const callers = 6
	outs := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, _, err := s.do(context.Background(), "k", compute)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			outs[i] = out
		}(i)
	}
	// Wait until the one computation is running, then let it finish.
	deadline := time.Now().Add(2 * time.Second)
	for computes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the rest join the flight
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("caller %d bytes differ", i)
		}
	}
	if shared := reg.Sink("server").Counter("flight.shared").Value(); shared != callers-1 {
		t.Fatalf("flight.shared = %d, want %d", shared, callers-1)
	}
}

func TestStoreSaturationFailsFast(t *testing.T) {
	s, pool, reg := newTestStore(t, 1, 0)
	// Occupy the single worker so the unbuffered queue cannot admit.
	// Submit blocks until the worker picks the task up, so afterwards
	// the pool is deterministically saturated.
	block := make(chan struct{})
	defer close(block)
	if err := pool.Submit(context.Background(), func(int) { <-block }); err != nil {
		t.Fatalf("occupying worker: %v", err)
	}

	_, _, err := s.do(context.Background(), "k", func(context.Context) (any, error) {
		t.Error("compute must not run on a saturated pool")
		return nil, nil
	})
	if !errors.Is(err, campaign.ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if rej := reg.Sink("server").Counter("compute.rejected").Value(); rej != 1 {
		t.Fatalf("compute.rejected = %d, want 1", rej)
	}
	// The failed flight must not wedge the key: after the worker frees
	// up, the same key computes fine.
}

func TestStoreComputeErrorNotCached(t *testing.T) {
	s, _, _ := newTestStore(t, 1, 1)
	boom := errors.New("boom")
	calls := 0
	compute := func(context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, _, err := s.do(context.Background(), "k", compute); !errors.Is(err, boom) {
		t.Fatalf("first do err = %v, want boom", err)
	}
	out, m, err := s.do(context.Background(), "k", compute)
	if err != nil || m.Cached {
		t.Fatalf("retry: meta=%+v err=%v", m, err)
	}
	if string(out) != "\"ok\"\n" {
		t.Fatalf("retry got %q", out)
	}
}

func TestStoreComputeTimeout(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	pool := campaign.NewPool(1, 1, nil)
	t.Cleanup(pool.Close)
	s := newStore(context.Background(), pool, 1<<20, 10*time.Millisecond, reg)

	_, _, err := s.do(context.Background(), "k", func(ctx context.Context) (any, error) {
		<-ctx.Done() // honor the compute deadline like the real kernels
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
