package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"readduo/internal/telemetry"
)

// startWorkerTS runs a Worker under httptest and returns its host:port
// address (the form RemoteWorkers expects) plus a kill switch.
func startWorkerTS(t *testing.T) (string, func()) {
	t.Helper()
	wk := NewWorker(WorkerConfig{
		Workers:  2,
		Registry: telemetry.NewRegistry("worker-test"),
	})
	ts := httptest.NewServer(wk.Handler())
	stop := func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		wk.Shutdown(ctx)
	}
	return strings.TrimPrefix(ts.URL, "http://"), stop
}

// topologyPaths is the query mix every topology must answer
// byte-identically: all four compute ops plus the uncached metadata
// endpoint.
func topologyPaths() []string {
	paths := []string{
		"/v1/ler?metric=R&eccs=8,16&intervals=16,64",
		"/v1/ler?metric=M&eccs=8&intervals=16,32,64",
		"/v1/schemes?spec=lwt:k=8",
		"/v1/compare?benchmark=gcc&schemes=ideal,scrubbing&budget=15000&seed=3",
	}
	for _, e := range []int{4, 8, 16} {
		for _, s := range []int{16, 64} {
			paths = append(paths, fmt.Sprintf("/v1/policy?e=%d&s=%d&w=1", e, s))
		}
	}
	for seed := 1; seed <= 3; seed++ {
		paths = append(paths, fmt.Sprintf("/v1/mc?cells=2000&seed=%d&shards=8", seed))
	}
	return paths
}

// TestTopologyByteIdentity is the tentpole acceptance test: the same
// query corpus served by (a) a local-only server, (b) a server with a
// disk cache tier, and (c) a server routing across two remote workers
// must produce byte-identical response bodies, because every topology
// runs the same deterministic evaluator and caches finished bytes.
func TestTopologyByteIdentity(t *testing.T) {
	w1, stop1 := startWorkerTS(t)
	defer stop1()
	w2, stop2 := startWorkerTS(t)
	defer stop2()

	topologies := []struct {
		name string
		cfg  Config
	}{
		{"local", Config{}},
		{"disk-tier", Config{DiskCacheDir: t.TempDir(), DiskCacheBytes: 1 << 20}},
		{"two-workers", Config{RemoteWorkers: []string{w1, w2}}},
	}

	paths := topologyPaths()
	bodies := make(map[string][]string) // path -> body per topology
	for _, topo := range topologies {
		_, ts := newTestServer(t, topo.cfg)
		for _, path := range paths {
			resp, body := get(t, ts, path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("[%s] %s: status %d: %s", topo.name, path, resp.StatusCode, body)
			}
			bodies[path] = append(bodies[path], string(body))
		}
	}
	for _, path := range paths {
		for i := 1; i < len(bodies[path]); i++ {
			if bodies[path][0] != bodies[path][i] {
				t.Errorf("%s: %s and %s disagree:\n%s\n%s", path,
					topologies[0].name, topologies[i].name,
					bodies[path][0], bodies[path][i])
			}
		}
	}
}

// TestTopologyWorkerKillDegrades kills one of two workers mid-run and
// verifies the frontend keeps answering 200 with the same bytes a
// healthy topology produces: failed routes fall back to local compute,
// and the dead node's circuit opens instead of wedging requests.
func TestTopologyWorkerKillDegrades(t *testing.T) {
	w1, stop1 := startWorkerTS(t)
	defer stop1()
	w2, stop2 := startWorkerTS(t)
	stopped := false
	defer func() {
		if !stopped {
			stop2()
		}
	}()

	// Reference bytes from a local-only server.
	_, localTS := newTestServer(t, Config{})
	remoteSrv, remoteTS := newTestServer(t, Config{RemoteWorkers: []string{w1, w2}})

	paths := topologyPaths()
	half := len(paths) / 2
	check := func(subset []string) {
		t.Helper()
		for _, path := range subset {
			wantResp, want := get(t, localTS, path)
			if wantResp.StatusCode != http.StatusOK {
				t.Fatalf("local %s: status %d", path, wantResp.StatusCode)
			}
			resp, body := get(t, remoteTS, path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("remote %s: status %d: %s", path, resp.StatusCode, body)
			}
			if string(want) != string(body) {
				t.Errorf("%s: bytes diverge after degradation:\n%s\n%s", path, want, body)
			}
		}
	}

	check(paths[:half])
	stop2() // kill one worker mid-run
	stopped = true
	check(paths[half:])

	// Spread enough distinct keys across the ring that the dead node sees
	// its three consecutive failures with overwhelming probability (each
	// key has ~1/2 odds of routing there, and the dead node can never
	// interleave a success to reset its streak).
	for seed := 100; seed < 140; seed++ {
		resp, body := get(t, remoteTS, fmt.Sprintf("/v1/mc?cells=500&seed=%d", seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill mc seed=%d: status %d: %s", seed, resp.StatusCode, body)
		}
	}

	// Requests routed at the dead node must have fallen back locally or
	// reached the surviving worker; either way the error budget shows up
	// on the breaker, not on clients.
	resp, body := get(t, remoteTS, "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "remote[2]") {
		t.Fatalf("statusz lost the backend kind: %s", body)
	}

	// Breaker transition sequence: the dead node's circuit tripped open
	// exactly once and never closed (the worker stays dead, so neither a
	// half-open trial nor a health probe can succeed), and the open
	// circuit short-circuited at least one later request.
	sink := remoteSrv.reg.Sink("server")
	if open := sink.Counter("remote.breaker.open").Value(); open != 1 {
		t.Errorf("breaker open transitions = %d, want exactly 1", open)
	}
	if closed := sink.Counter("remote.breaker.close").Value(); closed != 0 {
		t.Errorf("breaker close transitions = %d, want 0 while the worker is dead", closed)
	}
	if skipped := sink.Counter("remote.circuit_open").Value(); skipped == 0 {
		t.Error("open circuit never short-circuited a request")
	}
}
