package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"readduo/internal/backend"
	"readduo/internal/telemetry"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry("test")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, body
}

func TestLEREndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/ler?metric=R&eccs=8,16&intervals=16,64")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out lerResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Metric != "R" || len(out.Values) != 2 || len(out.Values[0]) != 2 {
		t.Fatalf("unexpected shape: %+v", out)
	}
	// LER grows with scrub interval and shrinks with ECC strength.
	if out.Values[0][0] <= out.Values[0][1] {
		t.Fatalf("LER not decreasing in ECC: %v", out.Values[0])
	}
	if out.Values[0][0] >= out.Values[1][0] {
		t.Fatalf("LER not increasing in interval: %v vs %v", out.Values[0][0], out.Values[1][0])
	}
}

// TestCacheByteIdentical is the acceptance check: identical specs get
// byte-identical bodies, differently-spelled identical specs share the
// cache entry, and GET vs POST converge on the same key.
func TestCacheByteIdentical(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	_, first := get(t, ts, "/v1/ler?metric=R&eccs=8,16&intervals=16,64")

	resp, second := get(t, ts, "/v1/ler?metric=r&eccs=16,8,16&intervals=64,16")
	if string(first) != string(second) {
		t.Fatalf("bodies differ:\n%s\n%s", first, second)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("X-Cache = %q, want hit", xc)
	}

	post, err := http.Post(ts.URL+"/v1/ler", "application/json",
		strings.NewReader(`{"metric":"R","eccs":[8,16],"intervals":[16,64]}`))
	if err != nil {
		t.Fatal(err)
	}
	third, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if string(first) != string(third) {
		t.Fatalf("POST body differs from GET:\n%s\n%s", first, third)
	}
	if xc := post.Header.Get("X-Cache"); xc != "hit" {
		t.Fatalf("POST X-Cache = %q, want hit", xc)
	}
	if hits := srv.reg.Sink("server").Counter("cache.hits").Value(); hits < 2 {
		t.Fatalf("cache.hits = %d, want >= 2", hits)
	}
	if miss := srv.reg.Sink("server").Counter("cache.misses").Value(); miss != 1 {
		t.Fatalf("cache.misses = %d, want 1", miss)
	}
}

func TestPolicyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/policy?metric=R&e=8&s=16&w=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out policyResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.E != 8 || out.S != 16 || out.W != 1 {
		t.Fatalf("echo mismatch: %+v", out)
	}
	if out.TargetFirst <= 0 || out.FirstInterval < 0 {
		t.Fatalf("degenerate probabilities: %+v", out)
	}
}

func TestMCEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/mc?cells=2000&seed=7&shards=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out mcResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.FirstFailSeconds <= 0 || out.MedianSeconds < out.P01Seconds {
		t.Fatalf("implausible quantiles: %+v", out)
	}
	// Determinism across requests is the cache's job, but determinism
	// across processes is the engine's: a fresh identical request after
	// cache bypass (different server) must match. Covered by the lifetime
	// package; here we just pin the cached path.
	_, again := get(t, ts, "/v1/mc?cells=2000&seed=7&shards=8")
	if string(body) != string(again) {
		t.Fatal("identical MC specs returned different bytes")
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/compare?benchmark=gcc&schemes=ideal,scrubbing&budget=20000&seed=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out compareResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Rows[0].Scheme != "Ideal" {
		t.Fatalf("rows: %+v", out.Rows)
	}
	if out.Rows[0].NormExecTime != 1.0 {
		t.Fatalf("first row not the normalization base: %+v", out.Rows[0])
	}
	if out.Rows[1].ExecSeconds <= 0 {
		t.Fatalf("scrubbing exec time missing: %+v", out.Rows[1])
	}
}

func TestSchemesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts, "/v1/schemes?spec=lwt:k=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out schemesResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Resolved != "LWT-8" {
		t.Fatalf("resolved = %q, want LWT-8", out.Resolved)
	}
	if len(out.Grammars) == 0 || len(out.Sets["readduo"]) == 0 {
		t.Fatalf("introspection empty: %+v", out)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{
		"/v1/ler?metric=Q",
		"/v1/ler?eccs=4&bogus=1",
		"/v1/policy?e=8&s=0",
		"/v1/mc?cells=-5",
		"/v1/compare?benchmark=nope&schemes=ideal",
		"/v1/compare?benchmark=gcc&schemes=bogus",
	} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", path, resp.StatusCode, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q", path, body)
		}
	}
}

// TestSaturationReturns429 deterministically saturates the pool (white
// box: occupy the workers and the queue directly), then checks the HTTP
// mapping: 429 with a Retry-After hint.
func TestSaturationReturns429(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	block := make(chan struct{})
	defer close(block)
	// One task executing + one queued = saturated. The first Submit
	// blocks until the worker picks it up; the second parks in the
	// queue buffer. Both are deterministic, unlike TrySubmit against
	// workers that may not have started receiving yet.
	for i := 0; i < 2; i++ {
		if err := srv.pool.Submit(context.Background(), func(int) { <-block }); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	resp, body := get(t, ts, "/v1/ler?eccs=8&intervals=16")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	if rej := srv.reg.Sink("server").Counter("compute.rejected").Value(); rej != 1 {
		t.Fatalf("compute.rejected = %d, want 1", rej)
	}
}

// TestComputeTimeoutReturns504 drives a compare whose instruction budget
// cannot finish inside the compute deadline.
func TestComputeTimeoutReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{ComputeTimeout: time.Millisecond, MaxCompareBudget: 2_000_000})
	resp, body := get(t, ts, "/v1/compare?benchmark=mcf&schemes=ideal,scrubbing,tlc&budget=2000000")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
}

// TestClientCancellationPropagates starts a heavy request, abandons it,
// and verifies the computation actually stops: the pool drains back to
// depth zero long before the work could have finished.
func TestClientCancellationPropagates(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/v1/mc?cells=10000000&shards=64", nil)
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	// Wait for the computation to be admitted, then abandon the request.
	deadline := time.Now().Add(2 * time.Second)
	for srv.pool.Depth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("client should observe its own cancellation")
	}
	for srv.pool.Depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool depth still %d: cancellation did not reach the kernel", srv.pool.Depth())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	srv, err := New(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)
	check("/v1/policy?e=8&s=16", http.StatusOK)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is closed, but the mux still answers (a drain-phase
	// probe through a shared handler would see 503).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after shutdown: %d, want 200 (liveness survives drain)", rec.Code)
	}
}

// TestStatusz checks the operational snapshot: backend kind, per-tier
// cache statistics with observed hit/miss counts, pool depth and
// singleflight gauge all present and coherent.
func TestStatusz(t *testing.T) {
	_, ts := newTestServer(t, Config{DiskCacheDir: t.TempDir(), DiskCacheBytes: 1 << 20})
	get(t, ts, "/v1/policy?e=8&s=16") // miss, computes
	get(t, ts, "/v1/policy?e=8&s=16") // hit in the heap tier

	resp, body := get(t, ts, "/statusz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out statuszResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Backend != "local" {
		t.Fatalf("backend = %q, want local", out.Backend)
	}
	if len(out.CacheTiers) != 2 || out.CacheTiers[0].Name != "lru" || out.CacheTiers[1].Name != "disk" {
		t.Fatalf("cache tiers: %+v", out.CacheTiers)
	}
	if out.CacheTiers[0].Entries != 1 || out.CacheTiers[0].Hits != 1 {
		t.Fatalf("heap tier stats: %+v", out.CacheTiers[0])
	}
	if out.CacheTiers[1].Entries != 1 {
		t.Fatalf("disk tier missing the write-through entry: %+v", out.CacheTiers[1])
	}
	if out.PoolDepth != 0 || out.InflightFlights != 0 {
		t.Fatalf("idle server shows depth=%d flights=%d", out.PoolDepth, out.InflightFlights)
	}
}

// faultBackend injects backend failures per request, for taxonomy and
// cache-poisoning tests at the HTTP layer.
type faultBackend struct {
	errs chan error // one error consumed per Compute; nil computes "ok"
}

func (f *faultBackend) Compute(ctx context.Context, key string, spec backend.Spec) ([]byte, error) {
	select {
	case err := <-f.errs:
		if err != nil {
			return nil, err
		}
	default:
	}
	return []byte("{\"ok\":true}\n"), nil
}
func (f *faultBackend) Depth() int   { return 0 }
func (f *faultBackend) Close() error { return nil }

// TestBackendFaultTaxonomy drives injected backend failures through the
// full HTTP path: an open circuit maps to 503, a worker's deterministic
// spec rejection to 400, and neither poisons the cache — the next
// request for the same key recomputes and succeeds.
func TestBackendFaultTaxonomy(t *testing.T) {
	fb := &faultBackend{errs: make(chan error, 2)}
	srv, ts := newTestServer(t, Config{Backend: fb})

	fb.errs <- backend.ErrCircuitOpen
	resp, body := get(t, ts, "/v1/policy?e=8&s=16")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("circuit open: status %d, want 503 (%s)", resp.StatusCode, body)
	}

	fb.errs <- backend.BadSpecError{Msg: "worker refused: e out of range"}
	resp, body = get(t, ts, "/v1/policy?e=8&s=16")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// Neither failure may have been cached: this request must recompute.
	resp, body = get(t, ts, "/v1/policy?e=8&s=16")
	if resp.StatusCode != http.StatusOK || string(body) != "{\"ok\":true}\n" {
		t.Fatalf("after faults: status %d body %q", resp.StatusCode, body)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "miss" {
		t.Fatalf("X-Cache = %q, want miss (faults must not cache)", xc)
	}
	if errs := srv.reg.Sink("server").Counter("compute.errors").Value(); errs != 2 {
		t.Fatalf("compute.errors = %d, want 2", errs)
	}
}

// TestShutdownDrainsInFlight verifies the graceful path: a request in
// flight when Shutdown begins completes with a real response.
func TestShutdownDrainsInFlight(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	srv, err := New(Config{Addr: "127.0.0.1:0", Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/v1/mc?cells=200000&shards=16")
		if err != nil {
			got <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- resp.StatusCode
	}()
	// Give the request a moment to be admitted, then drain. A fast
	// machine may finish the request before we observe it; that still
	// exercises the (trivial) drain path, so the wait is bounded.
	admitDeadline := time.Now().Add(2 * time.Second)
	for srv.pool.Depth() == 0 && time.Now().Before(admitDeadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-got; code != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", code)
	}
}
