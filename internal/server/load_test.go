package server

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"readduo/internal/telemetry"
)

// TestLoadMixed10k is the acceptance soak: >= 10k mixed requests against
// a live server. It verifies that
//
//   - every response is a well-formed status from the service's taxonomy
//     (200, 400, 429, 504 — never a 5xx surprise),
//   - identical specs always yield byte-identical bodies, across cache
//     hits, misses, and coalesced flights,
//   - the cache and singleflight actually engage (hit counters),
//   - memory stays bounded, and
//   - the server drains cleanly afterwards.
func TestLoadMixed10k(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	reg := telemetry.NewRegistry("load")
	srv, err := New(Config{
		Workers:    4,
		QueueDepth: 64,
		CacheBytes: 1 << 20, // small budget: force evictions under load
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The request mix: a bounded set of distinct cacheable specs (so the
	// cache and singleflight see heavy reuse), plus invalid requests.
	paths := make([]string, 0, 64)
	for e := 4; e <= 16; e += 4 {
		for _, s := range []int{8, 16, 64} {
			paths = append(paths, fmt.Sprintf("/v1/policy?e=%d&s=%d", e, s))
			paths = append(paths, fmt.Sprintf("/v1/policy?metric=M&e=%d&s=%d", e, s))
		}
	}
	for _, m := range []string{"R", "M"} {
		paths = append(paths,
			"/v1/ler?metric="+m,
			"/v1/ler?metric="+m+"&eccs=8,16&intervals=16,64",
		)
	}
	for seed := 1; seed <= 4; seed++ {
		paths = append(paths, fmt.Sprintf("/v1/mc?cells=20000&seed=%d&shards=8", seed))
	}
	paths = append(paths,
		"/v1/schemes",
		"/v1/schemes?spec=lwt:k=8",
		"/v1/ler?metric=Q",     // 400
		"/v1/policy?e=8&s=0",   // 400
		"/v1/mc?cells=-1",      // 400
		"/v1/unknown-endpoint", // 404 from the mux, not the taxonomy
	)

	const (
		total      = 10_000
		concurrent = 32
	)
	bodies := make([]map[string][32]byte, concurrent) // per-worker first-seen body per path
	var counts struct {
		sync.Mutex
		byStatus map[int]int
	}
	counts.byStatus = map[int]int{}

	var wg sync.WaitGroup
	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[string][32]byte)
			bodies[w] = seen
			client := &http.Client{Timeout: 30 * time.Second}
			for i := w; i < total; i += concurrent {
				// Walk the path list with a unit stride per worker
				// (offset by worker) so every worker covers every
				// path regardless of list-length parity.
				path := paths[(i/concurrent+w*5)%len(paths)]
				resp, err := client.Get(ts.URL + path)
				if err != nil {
					t.Errorf("worker %d: GET %s: %v", w, path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("worker %d: read %s: %v", w, path, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
					http.StatusTooManyRequests, http.StatusGatewayTimeout:
				default:
					t.Errorf("worker %d: %s -> unexpected status %d (%s)", w, path, resp.StatusCode, body)
					return
				}
				counts.Lock()
				counts.byStatus[resp.StatusCode]++
				counts.Unlock()
				if resp.StatusCode != http.StatusOK {
					continue
				}
				sum := sha256.Sum256(body)
				if prev, ok := seen[path]; ok && prev != sum {
					t.Errorf("worker %d: %s returned different bytes across requests", w, path)
					return
				}
				seen[path] = sum
			}
		}(w)
	}
	wg.Wait()

	// Identical specs must agree across workers too.
	canonical := make(map[string][32]byte)
	for w, seen := range bodies {
		for path, sum := range seen {
			if prev, ok := canonical[path]; ok && prev != sum {
				t.Fatalf("worker %d: %s bytes differ from another worker's", w, path)
			}
			canonical[path] = sum
		}
	}

	snap := reg.Snapshot()
	hits := snap.Counters["server.cache.hits"]
	okCount := counts.byStatus[http.StatusOK]
	if okCount < total/2 {
		t.Fatalf("only %d/%d requests succeeded: %v", okCount, total, counts.byStatus)
	}
	// With ~40 distinct cacheable specs and thousands of OK responses,
	// the overwhelming majority must be cache hits or shared flights.
	if served := hits + snap.Counters["server.flight.shared"]; served < uint64(okCount)*8/10 {
		t.Fatalf("cache pipeline barely engaged: hits=%d shared=%d ok=%d", hits,
			snap.Counters["server.flight.shared"], okCount)
	}
	if computed := snap.Counters["server.compute.ok"]; computed > uint64(len(paths)*4) {
		t.Fatalf("computed %d times for %d distinct specs: dedup not working", computed, len(paths))
	}

	// Bounded memory: after GC the heap must be far below anything a
	// leak across 10k requests would produce.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Fatalf("heap after soak = %d MiB, want < 256 MiB", ms.HeapAlloc>>20)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	t.Logf("statuses: %v; cache hits=%d shared=%d computed=%d evictions=%d",
		counts.byStatus, hits, snap.Counters["server.flight.shared"],
		snap.Counters["server.compute.ok"], snap.Counters["server.cache.tier.lru.evictions"])
}
