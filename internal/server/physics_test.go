package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestLERTempKeyCanonical pins the canonical-key contract for the
// temperature parameter: temp omitted and temp=300 are one cache entry,
// any other temperature is a different one.
func TestLERTempKeyCanonical(t *testing.T) {
	base := lerRequest{}
	if err := base.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	explicit := lerRequest{TempK: 300}
	if err := explicit.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if base.Key() != explicit.Key() {
		t.Errorf("temp omitted and temp=300 split keys: %s vs %s", base.Key(), explicit.Key())
	}
	cryo := lerRequest{TempK: 250}
	if err := cryo.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if cryo.Key() == base.Key() {
		t.Errorf("temp=250 shares the default key %s", base.Key())
	}

	pBase := policyRequest{E: 8, S: 16, W: 1}
	pHot := policyRequest{E: 8, S: 16, W: 1, TempK: 350}
	if err := pBase.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if err := pHot.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if pBase.Key() == pHot.Key() {
		t.Errorf("policy keys ignore temperature: %s", pBase.Key())
	}
}

// TestTempValidation rejects temperatures outside the model's range.
func TestTempValidation(t *testing.T) {
	for _, temp := range []float64{-1, 2, 3.9, 400.1, 1e6} {
		req := lerRequest{TempK: temp}
		if err := req.normalize(testLimits()); err == nil {
			t.Errorf("temp=%v accepted", temp)
		}
		pol := policyRequest{E: 8, S: 16, TempK: temp}
		if err := pol.normalize(testLimits()); err == nil {
			t.Errorf("policy temp=%v accepted", temp)
		}
	}
}

// TestLERTempEndpoint drives temperature end to end over HTTP and checks
// the physics sign: the same grid cell at 350 K can only be worse (higher
// LER) than at 250 K.
func TestLERTempEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	grid := func(temp string) lerResponse {
		t.Helper()
		resp, body := get(t, ts, "/v1/ler?metric=R&eccs=8&intervals=64&temp="+temp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("temp=%s: status %d: %s", temp, resp.StatusCode, body)
		}
		var out lerResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("temp=%s: bad JSON: %v\n%s", temp, err, body)
		}
		return out
	}
	cold, hot := grid("250"), grid("350")
	if cold.TempK != 250 || hot.TempK != 350 {
		t.Fatalf("responses do not echo the temperature: %v, %v", cold.TempK, hot.TempK)
	}
	if cold.Values[0][0] > hot.Values[0][0] {
		t.Errorf("LER at 250K (%g) exceeds 350K (%g)", cold.Values[0][0], hot.Values[0][0])
	}
	if resp, body := get(t, ts, "/v1/ler?temp=2"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("temp=2 not rejected: %d %s", resp.StatusCode, body)
	}
}

// TestPhysicsSchemeGrammar proves every new scheme family resolves through
// the serving grammar endpoint with its canonical name.
func TestPhysicsSchemeGrammar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for spec, want := range map[string]string{
		"lwc:r=16":                "LWC-16",
		"scrubbing:temp=250":      "Scrubbing@temp=250",
		"lwc:r=8,disturb=0.0005":  "LWC-8@disturb=0.0005",
		"hybrid:temp=330":         "Hybrid@temp=330",
		"ideal:temp=300":          "Ideal",
		"Select-4:2@disturb=0.01": "Select-4:2@disturb=0.01",
	} {
		resp, body := get(t, ts, "/v1/schemes?spec="+spec)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("spec %q: status %d: %s", spec, resp.StatusCode, body)
			continue
		}
		var out schemesResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Resolved != want {
			t.Errorf("spec %q resolved to %q, want %q", spec, out.Resolved, want)
		}
	}
}

// TestComparePhysicsSchemes runs the new families through the bounded
// comparison endpoint (the canonical-key path journals depend on).
func TestComparePhysicsSchemes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts,
		"/v1/compare?benchmark=gcc&schemes=scrubbing,lwc:r=16,scrubbing:temp=250&budget=20000&seed=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out compareResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows: %+v", out.Rows)
	}
	if out.Rows[1].Scheme != "LWC-16" || out.Rows[2].Scheme != "Scrubbing@temp=250" {
		t.Errorf("canonical scheme names wrong: %+v", out.Rows)
	}
}
