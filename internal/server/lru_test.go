package server

import (
	"fmt"
	"testing"
)

func TestLRUEvictsByBytes(t *testing.T) {
	// Each entry costs len(key)+len(val) = 2+8 = 10 bytes; budget fits 3.
	c := newLRUCache(30)
	for i := 0; i < 4; i++ {
		if ev := c.Put(fmt.Sprintf("k%d", i), make([]byte, 8)); i < 3 && ev != 0 {
			t.Fatalf("entry %d evicted %d, want 0", i, ev)
		}
	}
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("len=%d bytes=%d, want 3/30", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted (oldest)")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRUCache(30)
	c.Put("k0", make([]byte, 8))
	c.Put("k1", make([]byte, 8))
	c.Put("k2", make([]byte, 8))
	c.Get("k0") // k0 becomes most recent; k1 is now the eviction victim
	c.Put("k3", make([]byte, 8))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 should have survived (recently used)")
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRUCache(100)
	c.Put("k", []byte("short"))
	c.Put("k", []byte("a-much-longer-value"))
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
	want := int64(len("k") + len("a-much-longer-value"))
	if c.Bytes() != want {
		t.Fatalf("bytes=%d, want %d", c.Bytes(), want)
	}
	val, ok := c.Get("k")
	if !ok || string(val) != "a-much-longer-value" {
		t.Fatalf("got %q", val)
	}
	// Shrinking must reduce accounting too.
	c.Put("k", []byte("x"))
	if want := int64(2); c.Bytes() != want {
		t.Fatalf("bytes=%d after shrink, want %d", c.Bytes(), want)
	}
}

func TestLRUOversizedValueNotCached(t *testing.T) {
	c := newLRUCache(10)
	c.Put("small", []byte("ab"))
	if ev := c.Put("big", make([]byte, 100)); ev != 0 {
		t.Fatalf("oversized Put evicted %d entries", ev)
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized value must not be cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("existing entry clobbered by rejected oversized Put")
	}
}

func TestLRUGrowingUpdateEvictsOthers(t *testing.T) {
	c := newLRUCache(30)
	c.Put("k0", make([]byte, 8))
	c.Put("k1", make([]byte, 8))
	c.Put("k2", make([]byte, 8))
	// Growing k2 to 18 bytes (cost 20) forces the two older entries out.
	if ev := c.Put("k2", make([]byte, 18)); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted to fit the grown k2")
	}
	if c.Bytes() > 30 {
		t.Fatalf("bytes=%d exceeds budget", c.Bytes())
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := newLRUCache(0)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-capacity cache must store nothing")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d, want 0/0", c.Len(), c.Bytes())
	}
}
