package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"readduo/internal/slo"
	"readduo/internal/telemetry"
	"readduo/internal/tsdb"
)

// newObservedServer builds a server with the full observability stack:
// a live registry, a memory-backed collector, and an SLO tracker over
// every endpoint (availability-only, so the /statusz schema does not
// depend on request timing).
func newObservedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *tsdb.Collector) {
	t.Helper()
	reg := telemetry.NewRegistry("readduo-serve")
	store, err := tsdb.Open("", tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := tsdb.NewCollector(reg, store, time.Hour) // ticked via Poll, never by clock
	var objectives []slo.Objective
	for _, ep := range []string{"ler", "policy", "mc", "compare", "schemes"} {
		objectives = append(objectives, slo.Objective{Endpoint: ep, Availability: 0.999})
	}
	tracker := slo.NewTracker("server", objectives, nil)
	cfg.Registry = reg
	cfg.Collector = c
	cfg.SLO = tracker
	srv, ts := newTestServer(t, cfg)
	c.AddCollect(srv.TelemetrySamples)
	c.AddCollect(tracker.Collect)
	return srv, ts, c
}

// promValues parses counter/gauge sample lines ("name 42") out of a
// Prometheus text exposition.
func promValues(body string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricsExposition scrapes /metrics twice with traffic in between:
// the series-name set must be identical (deterministic names) and every
// counter monotone non-decreasing.
func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newObservedServer(t, Config{})

	hit := func(n int) {
		for i := 0; i < n; i++ {
			resp, body := get(t, ts, "/v1/policy?e=8&s=64&w=1")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("policy: %d: %s", resp.StatusCode, body)
			}
		}
	}
	hit(3)
	resp, body1 := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type %q", ct)
	}
	hit(2)
	_, body2 := get(t, ts, "/metrics")

	first, second := promValues(string(body1)), promValues(string(body2))
	names := func(m map[string]float64) []string {
		var out []string
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(names(first), names(second)) {
		t.Fatalf("series names changed between scrapes:\n%v\n%v", names(first), names(second))
	}
	for _, counter := range []string{
		"readduo_serve_server_http_requests",
		"readduo_serve_server_endpoint_policy_requests",
		"readduo_serve_server_cache_hits",
	} {
		a, ok1 := first[counter]
		b, ok2 := second[counter]
		if !ok1 || !ok2 {
			t.Fatalf("exposition missing %s:\n%s", counter, body1)
		}
		if b < a {
			t.Errorf("%s went backwards: %v -> %v", counter, a, b)
		}
	}
	if second["readduo_serve_server_http_requests"] != first["readduo_serve_server_http_requests"]+2 {
		t.Errorf("http.requests delta: %v -> %v, want +2",
			first["readduo_serve_server_http_requests"], second["readduo_serve_server_http_requests"])
	}
	if !strings.Contains(string(body1), `readduo_serve_server_http_request_ms_bucket{le="+Inf"}`) {
		t.Error("exposition missing histogram buckets")
	}
}

// TestSeriesAPIOnServeMux drives the collector and reads history back
// through the serving mux's /api/series route.
func TestSeriesAPIOnServeMux(t *testing.T) {
	_, ts, c := newObservedServer(t, Config{})
	for i := 0; i < 3; i++ {
		if resp, _ := get(t, ts, "/v1/schemes"); resp.StatusCode != http.StatusOK {
			t.Fatalf("schemes: %d", resp.StatusCode)
		}
		c.Poll()
	}
	resp, body := get(t, ts, "/api/series?name=server.http.requests")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("api/series: %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Name   string `json:"name"`
		Points []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"points"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if got.Name != "server.http.requests" || len(got.Points) == 0 {
		t.Fatalf("series response: %+v", got)
	}
	if last := got.Points[len(got.Points)-1]; last.V != 3 {
		t.Fatalf("last requests sample = %v, want 3", last.V)
	}

	// SLO burn series exist as first-class series after the ticks.
	resp, body = get(t, ts, "/api/series?name=slo.schemes.availability.burn_5m")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slo series: %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &got); err != nil || len(got.Points) == 0 {
		t.Fatalf("slo burn series empty: %s", body)
	}
}

// TestStatuszSLO: after a collector tick, /statusz carries per-endpoint
// SLO status with both burn windows.
func TestStatuszSLO(t *testing.T) {
	_, ts, c := newObservedServer(t, Config{})
	if resp, _ := get(t, ts, "/v1/schemes"); resp.StatusCode != http.StatusOK {
		t.Fatal("schemes request failed")
	}
	c.Poll()

	_, body := get(t, ts, "/statusz")
	var st struct {
		SLO []struct {
			Endpoint     string  `json:"endpoint"`
			Availability float64 `json:"availability"`
			Requests     uint64  `json:"requests"`
			Windows      []struct {
				Window string `json:"window"`
			} `json:"windows"`
		} `json:"slo"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad statusz JSON: %v\n%s", err, body)
	}
	if len(st.SLO) != 5 {
		t.Fatalf("statusz has %d SLO entries, want 5: %s", len(st.SLO), body)
	}
	byEp := make(map[string]int)
	for _, e := range st.SLO {
		byEp[e.Endpoint] = len(e.Windows)
		if e.Availability != 0.999 {
			t.Errorf("%s availability = %v", e.Endpoint, e.Availability)
		}
	}
	if byEp["schemes"] != 2 {
		t.Fatalf("schemes windows = %d, want 2 (5m+1h): %s", byEp["schemes"], body)
	}
	for _, e := range st.SLO {
		if e.Endpoint == "schemes" && e.Requests != 1 {
			t.Errorf("schemes requests = %d, want 1", e.Requests)
		}
	}
}

var updateStatuszSchema = flag.Bool("update-statusz-schema", false,
	"rewrite testdata/statusz_schema.json from the current /statusz shape")

// shapeOf reduces a decoded JSON value to its type shape: objects keep
// their field names, arrays keep one element shape, scalars become
// their type name. The golden schema pins field presence and types
// without pinning values.
func shapeOf(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			out[k] = shapeOf(val)
		}
		return out
	case []any:
		if len(x) == 0 {
			return []any{}
		}
		return []any{shapeOf(x[0])}
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// TestStatuszGoldenSchema pins the /statusz wire schema: adding a field
// updates the golden deliberately; renaming, retyping or dropping one
// fails here before it breaks a deployed scraper. The response is
// taken from a fully-populated server (remote workers, SLO, collector
// tick) so every optional section appears.
func TestStatuszGoldenSchema(t *testing.T) {
	w1, stop1 := startWorkerTS(t)
	defer stop1()
	_, ts, c := newObservedServer(t, Config{RemoteWorkers: []string{w1}})
	if resp, _ := get(t, ts, "/v1/schemes"); resp.StatusCode != http.StatusOK {
		t.Fatal("schemes request failed")
	}
	c.Poll()

	_, body := get(t, ts, "/statusz")
	var decoded any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("bad statusz JSON: %v\n%s", err, body)
	}
	shape := shapeOf(decoded)

	path := filepath.Join("testdata", "statusz_schema.json")
	if *updateStatuszSchema {
		buf, err := json.MarshalIndent(shape, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read schema golden: %v (regenerate with -update-statusz-schema)", err)
	}
	var want any
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("decode schema golden: %v", err)
	}
	// Normalize got through a JSON round trip so both sides compare as
	// generic decoded values.
	buf, err := json.Marshal(shape)
	if err != nil {
		t.Fatal(err)
	}
	var got any
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("/statusz schema drifted from golden (regenerate deliberately with -update-statusz-schema):\ngot:\n%s\nwant:\n%s",
			gotJSON, raw)
	}
}
