package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"readduo/internal/backend"
	"readduo/internal/cache"
	"readduo/internal/campaign"
	_ "readduo/internal/corpus" // register corpus:* scenarios for the spec grammar
	"readduo/internal/dashboard"
	"readduo/internal/slo"
	"readduo/internal/telemetry"
	"readduo/internal/tsdb"
)

// Config sizes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Addr is the listen address; empty selects ":8080". Use ":0" in
	// tests to grab an ephemeral port.
	Addr string
	// Workers bounds concurrent computations; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds computations admitted beyond the executing ones;
	// past that the pool refuses and the server answers 429. <= 0
	// selects 2x workers.
	QueueDepth int
	// CacheBytes budgets the in-heap response cache tier; <= 0 selects
	// 64 MiB.
	CacheBytes int64
	// DiskCacheDir, when non-empty, adds an on-disk cache tier below the
	// in-heap one: entries evicted from (or missing in) the heap tier are
	// served from disk and promoted back on hit. The directory is created
	// if absent and survives restarts.
	DiskCacheDir string
	// DiskCacheBytes budgets the disk tier; <= 0 selects 256 MiB. Ignored
	// without DiskCacheDir.
	DiskCacheBytes int64
	// RemoteWorkers lists worker base addresses (host:port). When
	// non-empty the server routes computations across them by consistent
	// hashing of the canonical spec key, degrading to local compute when
	// a worker fails or its circuit is open.
	RemoteWorkers []string
	// Backend, when non-nil, replaces the backend entirely (tests inject
	// fault models here). Overrides RemoteWorkers.
	Backend backend.Backend
	// RequestTimeout caps a request's wall time end to end; <= 0 selects
	// 30 s.
	RequestTimeout time.Duration
	// ComputeTimeout caps one computation on a worker; <= 0 selects the
	// request timeout.
	ComputeTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses; <= 0 selects 1 s.
	RetryAfter time.Duration
	// MaxGridCells, MaxMCCells, MaxCompareBudget and MaxCompareSchemes
	// cap per-request work; <= 0 selects 4096 cells, 10M cells, 2M
	// instructions and 8 schemes.
	MaxGridCells      int
	MaxMCCells        int
	MaxCompareBudget  uint64
	MaxCompareSchemes int
	// Registry receives the server's telemetry; nil disables probes.
	Registry *telemetry.Registry
	// Collector, when non-nil, backs /api/series range queries with its
	// store and feeds the dashboard SSE stream. The server mounts the
	// routes but does not own the collector's lifecycle; the obs session
	// (or the test) starts and stops it.
	Collector *tsdb.Collector
	// SLO, when non-nil, scores per-endpoint objectives; its live status
	// is surfaced on /statusz and its burn-rate series flow through the
	// Collector as first-class series.
	SLO *slo.Tracker
}

func (c *Config) applyDefaults() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DiskCacheBytes <= 0 {
		c.DiskCacheBytes = 256 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = c.RequestTimeout
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	if c.MaxMCCells <= 0 {
		c.MaxMCCells = 10_000_000
	}
	if c.MaxCompareBudget <= 0 {
		c.MaxCompareBudget = 2_000_000
	}
	if c.MaxCompareSchemes <= 0 {
		c.MaxCompareSchemes = 8
	}
}

func (c Config) limits() limits {
	return limits{
		MaxGridCells:      c.MaxGridCells,
		MaxMCCells:        c.MaxMCCells,
		MaxCompareBudget:  c.MaxCompareBudget,
		MaxCompareSchemes: c.MaxCompareSchemes,
	}
}

// serverProbes is the HTTP layer's instrumentation (the store has its
// own); nil-safe like every telemetry metric. The scope parameterizes
// the sink so the serve frontend ("server") and the worker binary
// ("worker") share the implementation without colliding metrics.
type serverProbes struct {
	sink      *telemetry.Sink
	requests  *telemetry.Counter
	inflight  *telemetry.Gauge
	panics    *telemetry.Counter
	requestMS *telemetry.Histogram

	mu       sync.Mutex
	byStatus map[int]*telemetry.Counter
}

func newServerProbes(reg *telemetry.Registry, scope string) *serverProbes {
	s := reg.Sink(scope)
	return &serverProbes{
		sink:      s,
		requests:  s.Counter("http.requests"),
		inflight:  s.Gauge("http.inflight"),
		panics:    s.Counter("http.panics"),
		requestMS: s.Histogram("http.request_ms"),
		byStatus:  make(map[int]*telemetry.Counter),
	}
}

// errsByStatus lazily interns one counter per error status code.
func (p *serverProbes) errsByStatus(status int) *telemetry.Counter {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.byStatus[status]
	if !ok {
		c = p.sink.Counter("http.errors." + strconv.Itoa(status))
		p.byStatus[status] = c
	}
	return c
}

// endpointProbes counts one handler's traffic under
// <scope>.endpoint.<name>.*, the series the SLO tracker scores.
type endpointProbes struct {
	requests  *telemetry.Counter
	errors    *telemetry.Counter
	requestMS *telemetry.Histogram
}

func (p *serverProbes) endpoint(name string) endpointProbes {
	return endpointProbes{
		requests:  p.sink.Counter("endpoint." + name + ".requests"),
		errors:    p.sink.Counter("endpoint." + name + ".errors"),
		requestMS: p.sink.Histogram("endpoint." + name + ".request_ms"),
	}
}

// statusRecorder captures the response status so instrument can count
// server faults (>= 500) against the endpoint's error budget. Client
// faults (4xx) spend no budget: the service answered correctly.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Server is the readduo-serve HTTP service: a mux over the query
// handlers, a store (tiered cache + singleflight + backend), and a
// drain-aware lifecycle.
type Server struct {
	cfg         Config
	reg         *telemetry.Registry
	tel         *serverProbes
	pool        *campaign.Pool
	be          backend.Backend
	backendKind string
	remote      *backend.Remote // nil unless RemoteWorkers configured
	cache       *cache.Tiered
	store       *store
	mux         *http.ServeMux
	http        *http.Server

	// base is the server lifetime; cancelling it aborts every in-flight
	// computation during shutdown.
	base       context.Context
	cancelBase context.CancelFunc

	ready atomic.Bool
	ln    net.Listener
}

// New builds a Server from cfg (defaults applied; cfg is not mutated).
// It errors only on backend/disk-tier construction: an unusable cache
// directory or an empty worker list.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		tel:        newServerProbes(cfg.Registry, "server"),
		base:       base,
		cancelBase: cancel,
	}
	queueWait := s.tel.sink.Histogram("pool.queue_wait_ms")
	s.pool = campaign.NewPool(cfg.Workers, cfg.QueueDepth, func(d time.Duration) {
		queueWait.Observe(uint64(d.Milliseconds()))
	})

	local := backend.NewLocal(s.pool, newEvaluator(cfg.limits(), cfg.Registry), cfg.ComputeTimeout)
	switch {
	case cfg.Backend != nil:
		s.be = cfg.Backend
		s.backendKind = "custom"
	case len(cfg.RemoteWorkers) > 0:
		r, err := backend.NewRemote(cfg.RemoteWorkers, local, backend.RemoteOptions{
			ComputeTimeout: cfg.ComputeTimeout,
			Sink:           cfg.Registry.Sink("server"),
		})
		if err != nil {
			cancel()
			s.pool.Close()
			return nil, err
		}
		s.be = r
		s.remote = r
		s.backendKind = fmt.Sprintf("remote[%d]", len(cfg.RemoteWorkers))
	default:
		s.be = local
		s.backendKind = "local"
	}

	tiers := []cache.Tier{cache.NewLRU(cfg.CacheBytes)}
	if cfg.DiskCacheDir != "" {
		disk, err := cache.OpenDisk(cfg.DiskCacheDir, cfg.DiskCacheBytes)
		if err != nil {
			cancel()
			s.pool.Close()
			s.be.Close()
			return nil, err
		}
		tiers = append(tiers, disk)
	}
	s.cache = cache.NewTiered(cfg.Registry.Sink("server.cache"), tiers...)
	s.store = newStore(base, s.be, s.cache, cfg.Registry)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/ler", s.instrument("ler", s.handleLER))
	s.mux.HandleFunc("/v1/policy", s.instrument("policy", s.handlePolicy))
	s.mux.HandleFunc("/v1/mc", s.instrument("mc", s.handleMC))
	s.mux.HandleFunc("/v1/compare", s.instrument("compare", s.handleCompare))
	s.mux.HandleFunc("/v1/schemes", s.instrument("schemes", s.handleSchemes))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	// Observability routes are uninstrumented like the probes: scrapes
	// must not skew the request metrics they report.
	s.mux.HandleFunc("/metrics", dashboard.Metrics(cfg.Registry))
	s.mux.HandleFunc("/api/series", dashboard.Series(cfg.Collector.Store()))
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler exposes the full route table (useful under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// TelemetrySamples is a tsdb.CollectFunc contributing the depths that
// are point-in-time reads rather than registry metrics: pool and
// backend queue depth and the in-flight singleflight count. Hooked into
// the collector, they become plottable series next to the counters.
func (s *Server) TelemetrySamples(int64, telemetry.Snapshot) []tsdb.Sample {
	return []tsdb.Sample{
		{Name: "server.pool.depth", Value: float64(s.pool.Depth())},
		{Name: "server.backend.depth", Value: float64(s.be.Depth())},
		{Name: "server.flight.inflight", Value: float64(s.store.flights.Len())},
	}
}

// instrument wraps a handler with the per-request timeout, panic
// recovery, the request counters, and the per-endpoint SLO probes
// (requests, server-fault errors, latency histogram).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.tel.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		s.tel.requests.Inc()
		ep.requests.Inc()
		s.tel.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			s.tel.inflight.Add(-1)
			ms := uint64(time.Since(start).Milliseconds())
			s.tel.requestMS.Observe(ms)
			ep.requestMS.Observe(ms)
			if p := recover(); p != nil {
				s.tel.panics.Inc()
				s.writeJSON(rec, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("panic: %v", p)})
			}
			if rec.status >= http.StatusInternalServerError {
				ep.errors.Inc()
			}
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(rec, r.WithContext(ctx))
	}
}

// handleHealthz reports liveness: the process is up and serving HTTP,
// even while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz reports readiness: 503 before Start and during drain, so
// a load balancer stops routing before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte(fmt.Sprintf("{\"status\":\"ready\",\"queue_depth\":%d}\n", s.pool.Depth())))
}

// statuszResponse is the /statusz wire shape: a live snapshot of the
// serving pipeline for operators and the multi-node smoke test.
type statuszResponse struct {
	Backend         string               `json:"backend"`
	Workers         []backend.NodeStatus `json:"workers,omitempty"`
	PoolDepth       int                  `json:"pool_depth"`
	BackendDepth    int                  `json:"backend_depth"`
	InflightFlights int                  `json:"inflight_flights"`
	CacheTiers      []cache.TierStats    `json:"cache_tiers"`
	SLO             []slo.EndpointStatus `json:"slo,omitempty"`
}

// handleStatusz reports the backend kind, per-tier cache statistics,
// pool depth and in-flight singleflight count. Uninstrumented like
// /healthz: status probes must not skew request metrics.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	resp := statuszResponse{
		Backend:         s.backendKind,
		PoolDepth:       s.pool.Depth(),
		BackendDepth:    s.be.Depth(),
		InflightFlights: s.store.flights.Len(),
		CacheTiers:      s.cache.Stats(),
	}
	if s.remote != nil {
		resp.Workers = s.remote.Nodes()
	}
	resp.SLO = s.cfg.SLO.Status()
	s.writeJSON(w, http.StatusOK, resp)
}

// Start binds the listener and serves until Shutdown. It returns once
// the listener is accepting (the caller learns the bound address via
// Addr); Serve errors after a clean Shutdown are swallowed.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.ready.Store(true)
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.tel.errsByStatus(http.StatusInternalServerError).Inc()
		}
	}()
	return nil
}

// Addr reports the bound listen address (resolved port after Start with
// ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: readiness flips off, the HTTP server
// stops accepting and waits for handlers up to ctx's deadline, then the
// base context aborts whatever computations are still running, the pool
// drains, and the backend and cache tiers release their resources.
// Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	err := s.http.Shutdown(ctx)
	s.cancelBase()
	s.pool.Close()
	s.be.Close()
	s.cache.Close()
	return err
}
