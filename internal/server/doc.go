// Package server is the readduo-serve query engine: an HTTP/JSON front
// end over the analytical stack (drift LER tables, scrub-policy checks,
// scheme introspection, Monte-Carlo endurance studies, and bounded
// full-system scheme comparisons).
//
// Every query endpoint is a pure function of a small parameter spec, so
// the serving core is a deduplicating cache pipeline:
//
//	request -> canonical key -> LRU byte cache
//	                        -> singleflight (concurrent identical specs
//	                           share one computation)
//	                        -> bounded worker pool (campaign.Pool) with
//	                           queue-depth backpressure (429 + Retry-After)
//
// Responses are cached as marshaled bytes, so identical specs always get
// byte-identical bodies regardless of cache state or map iteration
// order. Per-request deadlines and client disconnects propagate into the
// compute kernels (sim.RunContext, lifetime.SimulateMCContext): a flight
// whose last waiter walks away is cancelled, not finished for nobody.
//
// The package binds no debug or profiling surface of its own; the
// readduo-serve command wires the shared telemetry registry into the
// existing internal/telemetry/debughttp listener.
package server
