package server

import (
	"context"
	"sync"
)

// flight is one in-progress computation: every request for the same key
// parks on done; the job context is cancelled when the last waiter
// abandons the flight, so orphaned work stops burning workers.
type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	settled bool
	cancel  context.CancelFunc
}

// flightGroup coalesces concurrent requests for the same canonical key
// into a single computation. Unlike the classic singleflight, waiting is
// context-aware per caller: a waiter whose request is cancelled detaches
// immediately (its HTTP handler returns), and only when the flight has no
// waiters left is the underlying computation cancelled too.
type flightGroup struct {
	// base parents every flight's job context: typically the server's
	// lifetime, so graceful shutdown cancels all in-progress work.
	base context.Context

	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, flights: make(map[string]*flight)}
}

// Do returns the result for key, starting the computation via begin if no
// flight is in progress, or joining the existing flight otherwise
// (shared=true). begin receives the flight-scoped job context and a
// report callback it must invoke exactly once — from any goroutine —
// with the finished value.
func (g *flightGroup) Do(ctx context.Context, key string,
	begin func(jobCtx context.Context, report func([]byte, error))) (val []byte, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.waiters++
		g.mu.Unlock()
		return f.wait(ctx, g, key, true)
	}
	jobCtx, cancel := context.WithCancel(g.base)
	f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()

	begin(jobCtx, func(val []byte, err error) { g.settle(key, f, val, err) })
	return f.wait(ctx, g, key, false)
}

// wait parks until the flight settles or the caller's own context ends.
func (f *flight) wait(ctx context.Context, g *flightGroup, key string, shared bool) ([]byte, bool, error) {
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
		g.abandon(key, f)
		return nil, shared, ctx.Err()
	}
}

// settle publishes the result and retires the flight. A late settle from
// an already-abandoned flight is harmless: the key slot may already hold
// a newer flight, which is left untouched.
func (g *flightGroup) settle(key string, f *flight, val []byte, err error) {
	g.mu.Lock()
	if f.settled {
		g.mu.Unlock()
		return
	}
	f.settled = true
	f.val, f.err = val, err
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	f.cancel() // release the job context's resources
	close(f.done)
}

// Len reports the number of in-progress flights (for /statusz).
func (g *flightGroup) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// abandon detaches one waiter; the last one out cancels the computation
// and frees the key so a later request starts fresh.
func (g *flightGroup) abandon(key string, f *flight) {
	g.mu.Lock()
	f.waiters--
	last := f.waiters == 0 && !f.settled
	if last && g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	if last {
		f.cancel()
	}
}
