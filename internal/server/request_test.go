package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"readduo/internal/reliability"
)

func testLimits() limits {
	return limits{
		MaxGridCells:      4096,
		MaxMCCells:        10_000_000,
		MaxCompareBudget:  2_000_000,
		MaxCompareSchemes: 8,
	}
}

// TestLERKeyCanonical verifies that equivalent requests — defaults spelled
// out or elided, lists permuted or duplicated — collapse to one cache key.
func TestLERKeyCanonical(t *testing.T) {
	base := lerRequest{}
	if err := base.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	// Spell out the defaults explicitly, permuted and with a duplicate.
	eccs := reliability.PaperECCs()
	eccs = append([]int{eccs[len(eccs)-1], eccs[0]}, eccs...)
	ints := reliability.PaperIntervals()
	ints = append([]float64{ints[len(ints)-1]}, ints...)
	spelled := lerRequest{Metric: "r", ECCs: eccs, Intervals: ints}
	if err := spelled.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if base.Key() != spelled.Key() {
		t.Fatalf("keys differ:\n  %s\n  %s", base.Key(), spelled.Key())
	}
	other := lerRequest{Metric: "M"}
	if err := other.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if base.Key() == other.Key() {
		t.Fatalf("R and M metrics share key %s", base.Key())
	}
}

func TestLERValidation(t *testing.T) {
	cases := []lerRequest{
		{Metric: "Q"},
		{ECCs: []int{-1}},
		{ECCs: []int{100}},
		{Intervals: []float64{0}},
		{Intervals: []float64{-4}},
		{ECCs: make([]int, 100), Intervals: make([]float64, 100)}, // grid cap
	}
	for i, req := range cases {
		if err := req.normalize(testLimits()); err == nil {
			t.Errorf("case %d: want validation error, got key %s", i, req.Key())
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	good := policyRequest{E: 8, S: 16, W: 1}
	if err := good.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if want := "policy|m=R|t=300|e=8|s=16|w=1"; good.Key() != want {
		t.Fatalf("key = %s, want %s", good.Key(), want)
	}
	bad := []policyRequest{
		{E: -1, S: 16},
		{E: 8, S: 0},
		{E: 8, S: 16, W: 9}, // W > E
	}
	for i, req := range bad {
		if err := req.normalize(testLimits()); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMCDefaultsAndCaps(t *testing.T) {
	req := mcRequest{}
	if err := req.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if req.Cells != 100_000 || req.Seed != 1 || req.Shards == 0 {
		t.Fatalf("defaults not applied: %+v", req)
	}
	over := mcRequest{Cells: 20_000_000}
	if err := over.normalize(testLimits()); err == nil {
		t.Fatal("cells cap not enforced")
	}
	badShards := mcRequest{Cells: 10, Shards: 11}
	if err := badShards.normalize(testLimits()); err == nil {
		t.Fatal("shards > cells accepted")
	}
}

func TestCompareNormalization(t *testing.T) {
	req := compareRequest{Benchmark: "gcc", Schemes: []string{"ideal", "lwt:k=8"}}
	if err := req.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if req.Budget != 25_000 || req.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", req)
	}
	// Spec strings canonicalize through the parser, so spelling variants
	// share a key.
	alias := compareRequest{Benchmark: "gcc", Schemes: []string{"Ideal", "LWT:k=8"}}
	if err := alias.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if req.Key() != alias.Key() {
		t.Fatalf("keys differ:\n  %s\n  %s", req.Key(), alias.Key())
	}

	bad := []compareRequest{
		{Schemes: []string{"ideal"}},                                        // no benchmark
		{Benchmark: "nope", Schemes: []string{"ideal"}},                     // unknown benchmark
		{Benchmark: "gcc"},                                                  // no schemes
		{Benchmark: "gcc", Schemes: []string{"bogus"}},                      // unparsable scheme
		{Benchmark: "gcc", Schemes: []string{"ideal", "Ideal"}},             // duplicate
		{Benchmark: "gcc", Schemes: []string{"ideal"}, Budget: 100_000_000}, // budget cap
	}
	for i, req := range bad {
		if err := req.normalize(testLimits()); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// TestCompareAcceptsCorpusScenarios pins the serve spec grammar the
// workload subsystem promises: bench=corpus:zipfian resolves like any
// built-in workload (the server package registers the corpus).
func TestCompareAcceptsCorpusScenarios(t *testing.T) {
	req := compareRequest{Benchmark: "corpus:zipfian", Schemes: []string{"ideal"}}
	if err := req.normalize(testLimits()); err != nil {
		t.Fatal(err)
	}
	if req.Benchmark != "corpus:zipfian" || req.bench.Name != "corpus:zipfian" {
		t.Fatalf("corpus benchmark not canonicalized: %+v", req)
	}
	if !strings.Contains(req.Key(), "b=corpus:zipfian") {
		t.Fatalf("key %q lacks the corpus benchmark", req.Key())
	}
	// The known-benchmark listing in errors advertises corpus names.
	missing := compareRequest{Schemes: []string{"ideal"}}
	err := missing.normalize(testLimits())
	if err == nil || !strings.Contains(err.Error(), "corpus:zipfian") {
		t.Fatalf("err = %v, want corpus names in the known list", err)
	}
}

func TestQueryDecodeRejectsUnknownParams(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/mc?cells=100&sseed=3", nil)
	var req mcRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		if err := qv.int("cells", &req.Cells); err != nil {
			return err
		}
		return qv.int64("seed", &req.Seed)
	})
	if err == nil || !strings.Contains(err.Error(), "sseed") {
		t.Fatalf("err = %v, want unknown-parameter complaint about sseed", err)
	}
}

func TestJSONDecodeRejectsUnknownFields(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/mc", strings.NewReader(`{"cells":100,"sseed":3}`))
	var req mcRequest
	err := decodeRequest(r, &req, func(*queryValues) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "sseed") {
		t.Fatalf("err = %v, want unknown-field complaint about sseed", err)
	}
}

func TestQueryDecodeTypes(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/ler?metric=M&eccs=4,8&intervals=16,32.5", nil)
	var req lerRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("metric", &req.Metric)
		if err := qv.intList("eccs", &req.ECCs); err != nil {
			return err
		}
		return qv.floatList("intervals", &req.Intervals)
	})
	if err != nil {
		t.Fatal(err)
	}
	if req.Metric != "M" || len(req.ECCs) != 2 || req.Intervals[1] != 32.5 {
		t.Fatalf("decoded %+v", req)
	}

	bad := httptest.NewRequest("GET", "/v1/ler?eccs=4,x", nil)
	err = decodeRequest(bad, &req, func(qv *queryValues) error {
		return qv.intList("eccs", &req.ECCs)
	})
	if err == nil {
		t.Fatal("malformed int list accepted")
	}
}
