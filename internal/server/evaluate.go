package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"readduo/internal/backend"
	"readduo/internal/campaign"
	"readduo/internal/lifetime"
	"readduo/internal/reliability"
	"readduo/internal/telemetry"
	"readduo/internal/trace"
)

// This file is the compute side of the backend split: a backend.Spec
// (op + normalized body) deterministically reproduces the response
// bytes on any node. The frontend handlers and the worker binary both
// funnel through decodeSpec/newEvaluator, which is what makes responses
// byte-identical across topologies.

// Spec op names. /v1/schemes is pure metadata and never reaches a
// backend.
const (
	opLER     = "ler"
	opPolicy  = "policy"
	opMC      = "mc"
	opCompare = "compare"
)

// specRequest is the common shape of the four computable request types:
// normalize to canonical form, render the canonical key, compute.
type specRequest interface {
	normalize(limits) error
	Key() string
	compute(ctx context.Context, reg *telemetry.Registry) (any, error)
}

// decodeSpec rebuilds the normalized request a Spec describes. Unknown
// ops and malformed bodies are deterministic request errors (400), not
// compute failures. Normalization is idempotent, so a frontend's
// already-normalized body round-trips to the identical canonical key.
func decodeSpec(spec backend.Spec, lim limits) (specRequest, error) {
	var req specRequest
	switch spec.Op {
	case opLER:
		req = &lerRequest{}
	case opPolicy:
		req = &policyRequest{}
	case opMC:
		req = &mcRequest{}
	case opCompare:
		req = &compareRequest{}
	default:
		return nil, badf("unknown op %q", spec.Op)
	}
	dec := json.NewDecoder(bytes.NewReader(spec.Body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return nil, badf("bad %s spec body: %v", spec.Op, err)
	}
	if err := req.normalize(lim); err != nil {
		return nil, err
	}
	return req, nil
}

// specFor renders a normalized request as its wire Spec.
func specFor(op string, req specRequest) (backend.Spec, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return backend.Spec{}, fmt.Errorf("server: marshal %s spec: %w", op, err)
	}
	return backend.Spec{Op: op, Body: body}, nil
}

// newEvaluator builds the backend.Evaluator for this node: Spec in,
// marshaled newline-terminated response bytes out. reg receives
// campaign telemetry from compare runs; nil disables it.
func newEvaluator(lim limits, reg *telemetry.Registry) backend.Evaluator {
	return func(ctx context.Context, spec backend.Spec) ([]byte, error) {
		req, err := decodeSpec(spec, lim)
		if err != nil {
			return nil, err
		}
		val, err := req.compute(ctx, reg)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(val)
		if err != nil {
			return nil, fmt.Errorf("server: marshal result: %w", err)
		}
		return append(out, '\n'), nil
	}
}

// --- per-op compute bodies (moved verbatim from the PR-5 handlers) ----

func (q *lerRequest) compute(context.Context, *telemetry.Registry) (any, error) {
	an, err := reliability.NewAnalyzer(q.cfg)
	if err != nil {
		return nil, err
	}
	tab := an.BuildTable(q.Intervals, q.ECCs)
	return lerResponse{
		Metric:    q.Metric,
		TempK:     q.TempK,
		Intervals: tab.Intervals,
		ECCs:      tab.ECCs,
		Targets:   tab.Targets,
		Values:    tab.Values,
	}, nil
}

func (q *policyRequest) compute(context.Context, *telemetry.Registry) (any, error) {
	an, err := reliability.NewAnalyzer(q.cfg)
	if err != nil {
		return nil, err
	}
	rep, err := an.Check(reliability.Policy{E: q.E, S: q.S, W: q.W})
	if err != nil {
		return nil, err
	}
	return policyResponse{
		Metric: q.Metric, TempK: q.TempK, E: q.E, S: q.S, W: q.W,
		FirstInterval:  rep.FirstInterval,
		SecondInterval: rep.SecondInterval,
		ThirdInterval:  rep.ThirdInterval,
		TargetFirst:    rep.TargetFirst,
		TargetSecond:   rep.TargetSecond,
		TargetThird:    rep.TargetThird,
		Meets:          rep.Meets,
	}, nil
}

func (q *mcRequest) compute(ctx context.Context, _ *telemetry.Registry) (any, error) {
	res, err := lifetime.SimulateMCContext(ctx, lifetime.MCConfig{
		Cells:           q.Cells,
		MedianEndurance: q.MedianEndurance,
		Sigma:           q.Sigma,
		WearRate:        q.WearRate,
		Seed:            q.Seed,
		Shards:          q.Shards,
		Workers:         1, // one pool slot per request; fairness over speed
	})
	if err != nil {
		if ctx.Err() == nil {
			err = badRequestError{err} // MCConfig.Validate rejection
		}
		return nil, err
	}
	return mcResponse{
		Cells: q.Cells, Seed: q.Seed, Shards: q.Shards,
		FirstFailSeconds: res.FirstFailSeconds,
		P01Seconds:       res.P01Seconds,
		MedianSeconds:    res.MedianSeconds,
		MeanSeconds:      res.MeanSeconds,
	}, nil
}

func (q *compareRequest) compute(ctx context.Context, reg *telemetry.Registry) (any, error) {
	spec := campaign.Spec{
		Benchmarks: []trace.Benchmark{q.bench},
		Schemes:    q.schemes,
		Seeds:      []int64{q.Seed},
		Budget:     q.Budget,
	}
	out, err := campaign.Run(ctx, spec, campaign.Options{
		Parallel:       1, // the request already occupies one pool slot
		Telemetry:      reg,
		CancelInFlight: true,
	})
	if err != nil {
		return nil, err
	}
	if out.Interrupted {
		return nil, ctx.Err()
	}
	mats, err := out.Matrices(spec)
	if err != nil {
		return nil, err
	}
	results := mats[0].Matrix.Results[0]
	resp := compareResponse{
		Benchmark: q.Benchmark,
		Budget:    q.Budget,
		Seed:      q.Seed,
		Rows:      make([]compareRow, len(results)),
	}
	base := results[0].ExecTime.Seconds()
	for i, res := range results {
		norm := 0.0
		if base > 0 {
			norm = res.ExecTime.Seconds() / base
		}
		resp.Rows[i] = compareRow{
			Scheme:           res.Scheme,
			ExecSeconds:      res.ExecTime.Seconds(),
			NormExecTime:     norm,
			SystemEnergyPJ:   res.SystemEnergyPJ,
			CellWrites:       res.CellWrites,
			RReads:           res.RReads,
			MReads:           res.MReads,
			RMReads:          res.RMReads,
			Conversions:      res.Conversions,
			SilentErrors:     res.SilentErrors,
			AreaCellsPerLine: res.AreaCellsPerLine,
		}
	}
	return resp, nil
}
