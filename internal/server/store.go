package server

import (
	"context"
	"errors"
	"time"

	"readduo/internal/backend"
	"readduo/internal/cache"
	"readduo/internal/campaign"
	"readduo/internal/telemetry"
)

// storeProbes instruments the cache pipeline. All fields are nil-safe
// (telemetry's nil-metric contract), so a store without a registry runs
// probe-free. Per-tier hit/miss/eviction counters live inside
// cache.Tiered; these aggregate the serving pipeline's view.
type storeProbes struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	shared    *telemetry.Counter
	computed  *telemetry.Counter
	errors    *telemetry.Counter
	rejected  *telemetry.Counter
	cacheLen  *telemetry.Gauge
	cacheB    *telemetry.Gauge
	computeMS *telemetry.Histogram
}

func newStoreProbes(reg *telemetry.Registry) storeProbes {
	s := reg.Sink("server")
	return storeProbes{
		hits:      s.Counter("cache.hits"),
		misses:    s.Counter("cache.misses"),
		shared:    s.Counter("flight.shared"),
		computed:  s.Counter("compute.ok"),
		errors:    s.Counter("compute.errors"),
		rejected:  s.Counter("compute.rejected"),
		cacheLen:  s.Gauge("cache.entries"),
		cacheB:    s.Gauge("cache.bytes"),
		computeMS: s.Histogram("compute.wall_ms"),
	}
}

// store is the serving core: canonical key -> tiered cache ->
// singleflight -> backend. It owns no HTTP concerns; handlers translate
// its error taxonomy (ErrSaturated, ErrCircuitOpen, context errors)
// into status codes. Where the bytes come from — the local pool or a
// remote worker — is entirely the backend's business.
type store struct {
	cache   *cache.Tiered
	flights *flightGroup
	be      backend.Backend
	tel     storeProbes
}

// meta describes how a result was obtained, surfaced as response headers
// so clients (and the load test) can observe the pipeline.
type meta struct {
	Cached bool // served straight from a cache tier
	Shared bool // joined an in-progress flight
}

func newStore(base context.Context, be backend.Backend, tiers *cache.Tiered,
	reg *telemetry.Registry) *store {
	return &store{
		cache:   tiers,
		flights: newFlightGroup(base),
		be:      be,
		tel:     newStoreProbes(reg),
	}
}

// do returns the marshaled result for key, computing it at most once per
// concurrent demand. The backend produces the finished response bytes
// under the flight's job context; they are cached write-through and
// shared byte-identically with every waiter. A failed compute settles
// the flight with its error and never touches any cache tier.
func (s *store) do(ctx context.Context, key string, spec backend.Spec) ([]byte, meta, error) {
	if buf, ok := s.cache.Get(key); ok {
		s.tel.hits.Inc()
		return buf, meta{Cached: true}, nil
	}
	s.tel.misses.Inc()
	buf, shared, err := s.flights.Do(ctx, key, func(jobCtx context.Context, report func([]byte, error)) {
		go func() {
			start := time.Now()
			out, err := s.be.Compute(jobCtx, key, spec)
			s.tel.computeMS.Observe(uint64(time.Since(start).Milliseconds()))
			if err != nil {
				if errors.Is(err, campaign.ErrSaturated) {
					s.tel.rejected.Inc()
				} else {
					s.tel.errors.Inc()
				}
				report(nil, err)
				return
			}
			s.cache.Put(key, out)
			s.tel.cacheLen.Set(int64(s.cache.Len()))
			s.tel.cacheB.Set(s.cache.Bytes())
			s.tel.computed.Inc()
			report(out, nil)
		}()
	})
	if shared {
		s.tel.shared.Inc()
	}
	return buf, meta{Shared: shared}, err
}
