package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"readduo/internal/campaign"
	"readduo/internal/telemetry"
)

// storeProbes instruments the cache pipeline. All fields are nil-safe
// (telemetry's nil-metric contract), so a store without a registry runs
// probe-free.
type storeProbes struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	shared    *telemetry.Counter
	computed  *telemetry.Counter
	errors    *telemetry.Counter
	rejected  *telemetry.Counter
	cacheLen  *telemetry.Gauge
	cacheB    *telemetry.Gauge
	computeMS *telemetry.Histogram
}

func newStoreProbes(reg *telemetry.Registry) storeProbes {
	s := reg.Sink("server")
	return storeProbes{
		hits:      s.Counter("cache.hits"),
		misses:    s.Counter("cache.misses"),
		evictions: s.Counter("cache.evictions"),
		shared:    s.Counter("flight.shared"),
		computed:  s.Counter("compute.ok"),
		errors:    s.Counter("compute.errors"),
		rejected:  s.Counter("compute.rejected"),
		cacheLen:  s.Gauge("cache.entries"),
		cacheB:    s.Gauge("cache.bytes"),
		computeMS: s.Histogram("compute.wall_ms"),
	}
}

// store is the serving core: canonical key -> LRU -> singleflight ->
// bounded pool. It owns no HTTP concerns; handlers translate its error
// taxonomy (ErrSaturated, context errors) into status codes.
type store struct {
	cache          *lruCache
	flights        *flightGroup
	pool           *campaign.Pool
	computeTimeout time.Duration
	tel            storeProbes
}

// meta describes how a result was obtained, surfaced as response headers
// so clients (and the load test) can observe the pipeline.
type meta struct {
	Cached bool // served straight from the LRU
	Shared bool // joined an in-progress flight
}

func newStore(base context.Context, pool *campaign.Pool, cacheBytes int64,
	computeTimeout time.Duration, reg *telemetry.Registry) *store {
	return &store{
		cache:          newLRUCache(cacheBytes),
		flights:        newFlightGroup(base),
		pool:           pool,
		computeTimeout: computeTimeout,
		tel:            newStoreProbes(reg),
	}
}

// do returns the marshaled result for key, computing it at most once per
// concurrent demand. compute runs on a pool worker under the flight's job
// context bounded by the compute timeout; its result is marshaled once,
// cached, and shared byte-identically with every waiter.
func (s *store) do(ctx context.Context, key string,
	compute func(context.Context) (any, error)) ([]byte, meta, error) {
	if buf, ok := s.cache.Get(key); ok {
		s.tel.hits.Inc()
		return buf, meta{Cached: true}, nil
	}
	s.tel.misses.Inc()
	buf, shared, err := s.flights.Do(ctx, key, func(jobCtx context.Context, report func([]byte, error)) {
		submitErr := s.pool.TrySubmit(func(int) {
			start := time.Now()
			val, err := func() (any, error) {
				cctx, cancel := context.WithTimeout(jobCtx, s.computeTimeout)
				defer cancel()
				return compute(cctx)
			}()
			s.tel.computeMS.Observe(uint64(time.Since(start).Milliseconds()))
			if err != nil {
				s.tel.errors.Inc()
				report(nil, err)
				return
			}
			out, err := json.Marshal(val)
			if err != nil {
				s.tel.errors.Inc()
				report(nil, fmt.Errorf("server: marshal result: %w", err))
				return
			}
			out = append(out, '\n')
			evicted := s.cache.Put(key, out)
			if evicted > 0 {
				s.tel.evictions.Add(uint64(evicted))
			}
			s.tel.cacheLen.Set(int64(s.cache.Len()))
			s.tel.cacheB.Set(s.cache.Bytes())
			s.tel.computed.Inc()
			report(out, nil)
		})
		if submitErr != nil {
			s.tel.rejected.Inc()
			report(nil, submitErr)
		}
	})
	if shared {
		s.tel.shared.Inc()
	}
	return buf, meta{Shared: shared}, err
}
