package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"readduo/internal/campaign"
	"readduo/internal/lifetime"
	"readduo/internal/reliability"
	"readduo/internal/sim"
	"readduo/internal/trace"
)

// Response shapes. These are the service's wire contract; they flatten
// the internal types into explicit JSON so internal refactors don't
// silently change the API.

type lerResponse struct {
	Metric    string      `json:"metric"`
	Intervals []float64   `json:"intervals_s"`
	ECCs      []int       `json:"eccs"`
	Targets   []float64   `json:"targets"`
	Values    [][]float64 `json:"values"`
}

type policyResponse struct {
	Metric         string  `json:"metric"`
	E              int     `json:"e"`
	S              float64 `json:"s"`
	W              int     `json:"w"`
	FirstInterval  float64 `json:"first_interval"`
	SecondInterval float64 `json:"second_interval,omitempty"`
	ThirdInterval  float64 `json:"third_interval,omitempty"`
	TargetFirst    float64 `json:"target_first"`
	TargetSecond   float64 `json:"target_second,omitempty"`
	TargetThird    float64 `json:"target_third,omitempty"`
	Meets          bool    `json:"meets"`
}

type mcResponse struct {
	Cells            int     `json:"cells"`
	Seed             int64   `json:"seed"`
	Shards           int     `json:"shards"`
	FirstFailSeconds float64 `json:"first_fail_s"`
	P01Seconds       float64 `json:"p01_s"`
	MedianSeconds    float64 `json:"median_s"`
	MeanSeconds      float64 `json:"mean_s"`
}

type compareRow struct {
	Scheme           string  `json:"scheme"`
	ExecSeconds      float64 `json:"exec_s"`
	NormExecTime     float64 `json:"norm_exec_time"`
	SystemEnergyPJ   float64 `json:"system_energy_pj"`
	CellWrites       uint64  `json:"cell_writes"`
	RReads           uint64  `json:"r_reads"`
	MReads           uint64  `json:"m_reads"`
	RMReads          uint64  `json:"rm_reads"`
	Conversions      uint64  `json:"conversions"`
	SilentErrors     uint64  `json:"silent_errors"`
	AreaCellsPerLine float64 `json:"area_cells_per_line"`
}

type compareResponse struct {
	Benchmark string       `json:"benchmark"`
	Budget    uint64       `json:"budget"`
	Seed      int64        `json:"seed"`
	Rows      []compareRow `json:"rows"`
}

type schemesResponse struct {
	Grammars []string            `json:"grammars"`
	Sets     map[string][]string `json:"sets"`
	Resolved string              `json:"resolved,omitempty"`
}

// handleLER serves the drift line-error-rate grid (Tables III/IV).
func (s *Server) handleLER(w http.ResponseWriter, r *http.Request) {
	var req lerRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("metric", &req.Metric)
		if err := qv.intList("eccs", &req.ECCs); err != nil {
			return err
		}
		return qv.floatList("intervals", &req.Intervals)
	})
	if err == nil {
		err = req.normalize(s.cfg.limits())
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.serve(w, r, req.Key(), func(context.Context) (any, error) {
		an, err := reliability.NewAnalyzer(req.cfg)
		if err != nil {
			return nil, err
		}
		tab := an.BuildTable(req.Intervals, req.ECCs)
		return lerResponse{
			Metric:    req.Metric,
			Intervals: tab.Intervals,
			ECCs:      tab.ECCs,
			Targets:   tab.Targets,
			Values:    tab.Values,
		}, nil
	})
}

// handlePolicy serves one (E, S, W) scrub-policy verdict.
func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req policyRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("metric", &req.Metric)
		if err := qv.int("e", &req.E); err != nil {
			return err
		}
		if err := qv.float("s", &req.S); err != nil {
			return err
		}
		return qv.int("w", &req.W)
	})
	if err == nil {
		err = req.normalize(s.cfg.limits())
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.serve(w, r, req.Key(), func(context.Context) (any, error) {
		an, err := reliability.NewAnalyzer(req.cfg)
		if err != nil {
			return nil, err
		}
		rep, err := an.Check(reliability.Policy{E: req.E, S: req.S, W: req.W})
		if err != nil {
			return nil, err
		}
		return policyResponse{
			Metric: req.Metric, E: req.E, S: req.S, W: req.W,
			FirstInterval:  rep.FirstInterval,
			SecondInterval: rep.SecondInterval,
			ThirdInterval:  rep.ThirdInterval,
			TargetFirst:    rep.TargetFirst,
			TargetSecond:   rep.TargetSecond,
			TargetThird:    rep.TargetThird,
			Meets:          rep.Meets,
		}, nil
	})
}

// handleMC serves a bounded Monte-Carlo endurance study.
func (s *Server) handleMC(w http.ResponseWriter, r *http.Request) {
	var req mcRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		if err := qv.int("cells", &req.Cells); err != nil {
			return err
		}
		if err := qv.float("median_endurance", &req.MedianEndurance); err != nil {
			return err
		}
		if err := qv.float("sigma", &req.Sigma); err != nil {
			return err
		}
		if err := qv.float("wear_rate", &req.WearRate); err != nil {
			return err
		}
		if err := qv.int64("seed", &req.Seed); err != nil {
			return err
		}
		return qv.int("shards", &req.Shards)
	})
	if err == nil {
		err = req.normalize(s.cfg.limits())
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.serve(w, r, req.Key(), func(ctx context.Context) (any, error) {
		res, err := lifetime.SimulateMCContext(ctx, lifetime.MCConfig{
			Cells:           req.Cells,
			MedianEndurance: req.MedianEndurance,
			Sigma:           req.Sigma,
			WearRate:        req.WearRate,
			Seed:            req.Seed,
			Shards:          req.Shards,
			Workers:         1, // one pool slot per request; fairness over speed
		})
		if err != nil {
			if ctx.Err() == nil {
				err = badRequestError{err} // MCConfig.Validate rejection
			}
			return nil, err
		}
		return mcResponse{
			Cells: req.Cells, Seed: req.Seed, Shards: req.Shards,
			FirstFailSeconds: res.FirstFailSeconds,
			P01Seconds:       res.P01Seconds,
			MedianSeconds:    res.MedianSeconds,
			MeanSeconds:      res.MeanSeconds,
		}, nil
	})
}

// handleCompare serves a bounded full-system scheme comparison on one
// benchmark, driven through the campaign engine with in-flight
// cancellation so an abandoned request stops simulating.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("benchmark", &req.Benchmark)
		if err := qv.strList("schemes", &req.Schemes); err != nil {
			return err
		}
		if err := qv.uint64("budget", &req.Budget); err != nil {
			return err
		}
		return qv.int64("seed", &req.Seed)
	})
	if err == nil {
		err = req.normalize(s.cfg.limits())
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.serve(w, r, req.Key(), func(ctx context.Context) (any, error) {
		spec := campaign.Spec{
			Benchmarks: []trace.Benchmark{req.bench},
			Schemes:    req.schemes,
			Seeds:      []int64{req.Seed},
			Budget:     req.Budget,
		}
		out, err := campaign.Run(ctx, spec, campaign.Options{
			Parallel:       1, // the request already occupies one pool slot
			Telemetry:      s.reg,
			CancelInFlight: true,
		})
		if err != nil {
			return nil, err
		}
		if out.Interrupted {
			return nil, ctx.Err()
		}
		mats, err := out.Matrices(spec)
		if err != nil {
			return nil, err
		}
		results := mats[0].Matrix.Results[0]
		resp := compareResponse{
			Benchmark: req.Benchmark,
			Budget:    req.Budget,
			Seed:      req.Seed,
			Rows:      make([]compareRow, len(results)),
		}
		base := results[0].ExecTime.Seconds()
		for i, res := range results {
			norm := 0.0
			if base > 0 {
				norm = res.ExecTime.Seconds() / base
			}
			resp.Rows[i] = compareRow{
				Scheme:           res.Scheme,
				ExecSeconds:      res.ExecTime.Seconds(),
				NormExecTime:     norm,
				SystemEnergyPJ:   res.SystemEnergyPJ,
				CellWrites:       res.CellWrites,
				RReads:           res.RReads,
				MReads:           res.MReads,
				RMReads:          res.RMReads,
				Conversions:      res.Conversions,
				SilentErrors:     res.SilentErrors,
				AreaCellsPerLine: res.AreaCellsPerLine,
			}
		}
		return resp, nil
	})
}

// handleSchemes serves scheme-spec introspection: the registered
// grammars, the named scheme sets, and (with ?spec=) the canonical name
// a spec string resolves to. Pure metadata — served directly, uncached.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, r, badf("method %s not allowed", r.Method))
		return
	}
	resp := schemesResponse{
		Grammars: sim.SchemeGrammars(),
		Sets: map[string][]string{
			"prior":   schemeNames(sim.PriorSchemes()),
			"readduo": schemeNames(sim.ReadDuoSchemes()),
			"all":     schemeNames(sim.AllSchemes()),
			"edap":    schemeNames(sim.EDAPSchemes()),
		},
	}
	if spec := r.URL.Query().Get("spec"); spec != "" {
		sch, err := sim.Parse(spec)
		if err != nil {
			s.writeError(w, r, badRequestError{err})
			return
		}
		resp.Resolved = sch.Name()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func schemeNames(schemes []sim.Scheme) []string {
	out := make([]string, len(schemes))
	for i, sch := range schemes {
		out[i] = sch.Name()
	}
	return out
}

// serve funnels a cacheable request through the store and translates the
// outcome onto the wire. Cached and freshly computed responses are the
// same bytes; X-Cache distinguishes them for observability only.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key string,
	compute func(context.Context) (any, error)) {
	buf, m, err := s.store.do(r.Context(), key, compute)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	switch {
	case m.Cached:
		w.Header().Set("X-Cache", "hit")
	case m.Shared:
		w.Header().Set("X-Cache", "shared")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// statusClientClosedRequest is nginx's conventional code for a request
// abandoned by the client; the write usually lands nowhere, but logs and
// metrics see an honest status.
const statusClientClosedRequest = 499

// writeError maps the store/compute error taxonomy onto HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var status int
	var bad badRequestError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.Is(err, campaign.ErrSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	case errors.Is(err, campaign.ErrPoolClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			status = statusClientClosedRequest
		} else {
			status = http.StatusServiceUnavailable // server shutting down
		}
	default:
		status = http.StatusInternalServerError
	}
	s.tel.errsByStatus(status).Inc()
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}
