package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"readduo/internal/backend"
	"readduo/internal/campaign"
	"readduo/internal/sim"
)

// Response shapes. These are the service's wire contract; they flatten
// the internal types into explicit JSON so internal refactors don't
// silently change the API.

type lerResponse struct {
	Metric    string      `json:"metric"`
	TempK     float64     `json:"temp_k"`
	Intervals []float64   `json:"intervals_s"`
	ECCs      []int       `json:"eccs"`
	Targets   []float64   `json:"targets"`
	Values    [][]float64 `json:"values"`
}

type policyResponse struct {
	Metric         string  `json:"metric"`
	TempK          float64 `json:"temp_k"`
	E              int     `json:"e"`
	S              float64 `json:"s"`
	W              int     `json:"w"`
	FirstInterval  float64 `json:"first_interval"`
	SecondInterval float64 `json:"second_interval,omitempty"`
	ThirdInterval  float64 `json:"third_interval,omitempty"`
	TargetFirst    float64 `json:"target_first"`
	TargetSecond   float64 `json:"target_second,omitempty"`
	TargetThird    float64 `json:"target_third,omitempty"`
	Meets          bool    `json:"meets"`
}

type mcResponse struct {
	Cells            int     `json:"cells"`
	Seed             int64   `json:"seed"`
	Shards           int     `json:"shards"`
	FirstFailSeconds float64 `json:"first_fail_s"`
	P01Seconds       float64 `json:"p01_s"`
	MedianSeconds    float64 `json:"median_s"`
	MeanSeconds      float64 `json:"mean_s"`
}

type compareRow struct {
	Scheme           string  `json:"scheme"`
	ExecSeconds      float64 `json:"exec_s"`
	NormExecTime     float64 `json:"norm_exec_time"`
	SystemEnergyPJ   float64 `json:"system_energy_pj"`
	CellWrites       uint64  `json:"cell_writes"`
	RReads           uint64  `json:"r_reads"`
	MReads           uint64  `json:"m_reads"`
	RMReads          uint64  `json:"rm_reads"`
	Conversions      uint64  `json:"conversions"`
	SilentErrors     uint64  `json:"silent_errors"`
	AreaCellsPerLine float64 `json:"area_cells_per_line"`
}

type compareResponse struct {
	Benchmark string       `json:"benchmark"`
	Budget    uint64       `json:"budget"`
	Seed      int64        `json:"seed"`
	Rows      []compareRow `json:"rows"`
}

type schemesResponse struct {
	Grammars []string            `json:"grammars"`
	Sets     map[string][]string `json:"sets"`
	Resolved string              `json:"resolved,omitempty"`
}

// handleLER serves the drift line-error-rate grid (Tables III/IV).
func (s *Server) handleLER(w http.ResponseWriter, r *http.Request) {
	var req lerRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("metric", &req.Metric)
		if err := qv.float("temp", &req.TempK); err != nil {
			return err
		}
		if err := qv.intList("eccs", &req.ECCs); err != nil {
			return err
		}
		return qv.floatList("intervals", &req.Intervals)
	})
	s.dispatch(w, r, opLER, &req, err)
}

// handlePolicy serves one (E, S, W) scrub-policy verdict.
func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req policyRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("metric", &req.Metric)
		if err := qv.float("temp", &req.TempK); err != nil {
			return err
		}
		if err := qv.int("e", &req.E); err != nil {
			return err
		}
		if err := qv.float("s", &req.S); err != nil {
			return err
		}
		return qv.int("w", &req.W)
	})
	s.dispatch(w, r, opPolicy, &req, err)
}

// handleMC serves a bounded Monte-Carlo endurance study.
func (s *Server) handleMC(w http.ResponseWriter, r *http.Request) {
	var req mcRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		if err := qv.int("cells", &req.Cells); err != nil {
			return err
		}
		if err := qv.float("median_endurance", &req.MedianEndurance); err != nil {
			return err
		}
		if err := qv.float("sigma", &req.Sigma); err != nil {
			return err
		}
		if err := qv.float("wear_rate", &req.WearRate); err != nil {
			return err
		}
		if err := qv.int64("seed", &req.Seed); err != nil {
			return err
		}
		return qv.int("shards", &req.Shards)
	})
	s.dispatch(w, r, opMC, &req, err)
}

// handleCompare serves a bounded full-system scheme comparison on one
// benchmark, driven through the campaign engine with in-flight
// cancellation so an abandoned request stops simulating.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	err := decodeRequest(r, &req, func(qv *queryValues) error {
		qv.str("benchmark", &req.Benchmark)
		if err := qv.strList("schemes", &req.Schemes); err != nil {
			return err
		}
		if err := qv.uint64("budget", &req.Budget); err != nil {
			return err
		}
		return qv.int64("seed", &req.Seed)
	})
	s.dispatch(w, r, opCompare, &req, err)
}

// dispatch finishes a compute handler: normalize the decoded request,
// render it as a backend spec, and serve through the store. decodeErr
// carries any earlier decode failure so the handlers stay linear.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, op string,
	req specRequest, decodeErr error) {
	err := decodeErr
	if err == nil {
		err = req.normalize(s.cfg.limits())
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	spec, err := specFor(op, req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.serve(w, r, req.Key(), spec)
}

// handleSchemes serves scheme-spec introspection: the registered
// grammars, the named scheme sets, and (with ?spec=) the canonical name
// a spec string resolves to. Pure metadata — served directly, uncached.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, r, badf("method %s not allowed", r.Method))
		return
	}
	resp := schemesResponse{
		Grammars: sim.SchemeGrammars(),
		Sets: map[string][]string{
			"prior":   schemeNames(sim.PriorSchemes()),
			"readduo": schemeNames(sim.ReadDuoSchemes()),
			"all":     schemeNames(sim.AllSchemes()),
			"edap":    schemeNames(sim.EDAPSchemes()),
		},
	}
	if spec := r.URL.Query().Get("spec"); spec != "" {
		sch, err := sim.Parse(spec)
		if err != nil {
			s.writeError(w, r, badRequestError{err})
			return
		}
		resp.Resolved = sch.Name()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func schemeNames(schemes []sim.Scheme) []string {
	out := make([]string, len(schemes))
	for i, sch := range schemes {
		out[i] = sch.Name()
	}
	return out
}

// serve funnels a cacheable request through the store and translates the
// outcome onto the wire. Cached and freshly computed responses are the
// same bytes; X-Cache distinguishes them for observability only.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key string, spec backend.Spec) {
	buf, m, err := s.store.do(r.Context(), key, spec)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	switch {
	case m.Cached:
		w.Header().Set("X-Cache", "hit")
	case m.Shared:
		w.Header().Set("X-Cache", "shared")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// statusClientClosedRequest is nginx's conventional code for a request
// abandoned by the client; the write usually lands nowhere, but logs and
// metrics see an honest status.
const statusClientClosedRequest = 499

// writeError maps the store/backend error taxonomy onto HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var status int
	var bad badRequestError
	var badSpec backend.BadSpecError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &badSpec):
		// A worker rejected the spec deterministically: the client's
		// request is at fault, not the node.
		status = http.StatusBadRequest
	case errors.Is(err, campaign.ErrSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	case errors.Is(err, campaign.ErrPoolClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, backend.ErrCircuitOpen):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			status = statusClientClosedRequest
		} else {
			status = http.StatusServiceUnavailable // server shutting down
		}
	default:
		status = http.StatusInternalServerError
	}
	s.tel.errsByStatus(status).Inc()
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}
