package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"readduo/internal/backend"
	"readduo/internal/campaign"
	"readduo/internal/dashboard"
	"readduo/internal/telemetry"
	"readduo/internal/tsdb"
)

// WorkerConfig sizes a Worker. The zero value is usable; defaults
// mirror the frontend Server where the knobs overlap.
type WorkerConfig struct {
	// Addr is the listen address; empty selects ":8081".
	Addr string
	// Workers bounds concurrent computations; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued computations; <= 0 selects 2x workers.
	QueueDepth int
	// ComputeTimeout caps one computation; <= 0 selects 30 s. The
	// frontend's X-Deadline-Ms header tightens it per request.
	ComputeTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses; <= 0 selects 1 s.
	RetryAfter time.Duration
	// MaxGridCells, MaxMCCells, MaxCompareBudget and MaxCompareSchemes
	// cap per-request work exactly like the frontend's. A worker whose
	// caps are tighter than its frontend's will 400 specs the frontend
	// admitted — keep them aligned.
	MaxGridCells      int
	MaxMCCells        int
	MaxCompareBudget  uint64
	MaxCompareSchemes int
	// Registry receives worker.* telemetry; nil disables probes.
	Registry *telemetry.Registry
	// Collector, when non-nil, backs the worker's /api/series route.
	// Like the frontend, the worker mounts observability routes but the
	// obs session owns the collector lifecycle.
	Collector *tsdb.Collector
}

func (c *WorkerConfig) applyDefaults() {
	if c.Addr == "" {
		c.Addr = ":8081"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxGridCells <= 0 {
		c.MaxGridCells = 4096
	}
	if c.MaxMCCells <= 0 {
		c.MaxMCCells = 10_000_000
	}
	if c.MaxCompareBudget <= 0 {
		c.MaxCompareBudget = 2_000_000
	}
	if c.MaxCompareSchemes <= 0 {
		c.MaxCompareSchemes = 8
	}
}

// Worker is the readduo-worker HTTP service: the compute half of the
// serving split. It exposes POST /compute over the same evaluator the
// frontend runs locally — which is what keeps responses byte-identical
// regardless of which node produced them — plus /healthz and /readyz
// for the frontend's circuit breaker and load balancers. Workers do not
// cache: the frontend's tiered cache is the single cache authority, so
// a worker restart never serves stale bytes.
type Worker struct {
	cfg   WorkerConfig
	tel   *serverProbes
	pool  *campaign.Pool
	local *backend.Local
	mux   *http.ServeMux
	http  *http.Server

	base       context.Context
	cancelBase context.CancelFunc

	ready atomic.Bool
	ln    net.Listener
}

// NewWorker builds a Worker from cfg (defaults applied; cfg is not
// mutated).
func NewWorker(cfg WorkerConfig) *Worker {
	cfg.applyDefaults()
	base, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:        cfg,
		tel:        newServerProbes(cfg.Registry, "worker"),
		base:       base,
		cancelBase: cancel,
	}
	queueWait := w.tel.sink.Histogram("pool.queue_wait_ms")
	w.pool = campaign.NewPool(cfg.Workers, cfg.QueueDepth, func(d time.Duration) {
		queueWait.Observe(uint64(d.Milliseconds()))
	})
	w.local = backend.NewLocal(w.pool, newEvaluator(cfg.limits(), cfg.Registry), cfg.ComputeTimeout)

	w.mux = http.NewServeMux()
	w.mux.HandleFunc(backend.ComputePath, w.handleCompute)
	w.mux.HandleFunc("/healthz", w.handleHealthz)
	w.mux.HandleFunc("/readyz", w.handleReadyz)
	w.mux.HandleFunc("/metrics", dashboard.Metrics(cfg.Registry))
	w.mux.HandleFunc("/api/series", dashboard.Series(cfg.Collector.Store()))
	w.http = &http.Server{Handler: w.mux}
	return w
}

// TelemetrySamples mirrors the frontend's depth samples for the
// worker's pool.
func (w *Worker) TelemetrySamples(int64, telemetry.Snapshot) []tsdb.Sample {
	return []tsdb.Sample{
		{Name: "worker.pool.depth", Value: float64(w.pool.Depth())},
	}
}

func (c WorkerConfig) limits() limits {
	return limits{
		MaxGridCells:      c.MaxGridCells,
		MaxMCCells:        c.MaxMCCells,
		MaxCompareBudget:  c.MaxCompareBudget,
		MaxCompareSchemes: c.MaxCompareSchemes,
	}
}

// Handler exposes the route table (useful under httptest).
func (w *Worker) Handler() http.Handler { return w.mux }

// handleCompute executes one routed spec. The worker re-derives the
// canonical key from the spec and refuses a mismatch with the routed
// key: version skew between frontend and worker must fail loudly, not
// fill the frontend's cache with wrong bytes.
func (wk *Worker) handleCompute(w http.ResponseWriter, r *http.Request) {
	wk.tel.requests.Inc()
	wk.tel.inflight.Add(1)
	start := time.Now()
	defer func() {
		wk.tel.inflight.Add(-1)
		wk.tel.requestMS.Observe(uint64(time.Since(start).Milliseconds()))
	}()
	if r.Method != http.MethodPost {
		wk.writeError(w, r, badf("method %s not allowed", r.Method))
		return
	}
	var creq backend.ComputeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&creq); err != nil {
		wk.writeError(w, r, badf("bad compute request: %v", err))
		return
	}

	req, err := decodeSpec(creq.Spec, wk.cfg.limits())
	if err != nil {
		wk.writeError(w, r, err)
		return
	}
	if key := req.Key(); key != creq.Key {
		wk.writeError(w, r, badf("spec key mismatch: routed %q, derived %q", creq.Key, key))
		return
	}

	ctx := r.Context()
	if h := r.Header.Get(backend.DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			wk.writeError(w, r, badf("bad %s header %q", backend.DeadlineHeader, h))
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	buf, err := wk.local.Compute(ctx, creq.Key, creq.Spec)
	if err != nil {
		wk.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

// writeError reuses the frontend's taxonomy so Remote sees identical
// statuses from a worker and from its own local path.
func (wk *Worker) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var status int
	var bad badRequestError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.Is(err, campaign.ErrSaturated):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(wk.cfg.RetryAfter.Seconds())))
	case errors.Is(err, campaign.ErrPoolClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		if r.Context().Err() != nil {
			status = statusClientClosedRequest
		} else {
			status = http.StatusServiceUnavailable // worker draining
		}
	default:
		status = http.StatusInternalServerError
	}
	wk.tel.errsByStatus(status).Inc()
	buf, merr := json.Marshal(map[string]string{"error": err.Error()})
	if merr != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

func (wk *Worker) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (wk *Worker) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if !wk.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("{\"status\":\"draining\"}\n"))
		return
	}
	w.Write([]byte(fmt.Sprintf("{\"status\":\"ready\",\"queue_depth\":%d}\n", wk.pool.Depth())))
}

// Start binds the listener and serves until Shutdown.
func (w *Worker) Start() error {
	ln, err := net.Listen("tcp", w.cfg.Addr)
	if err != nil {
		return fmt.Errorf("worker: listen %s: %w", w.cfg.Addr, err)
	}
	w.ln = ln
	w.ready.Store(true)
	go func() {
		if err := w.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			w.tel.errsByStatus(http.StatusInternalServerError).Inc()
		}
	}()
	return nil
}

// Addr reports the bound listen address.
func (w *Worker) Addr() string {
	if w.ln == nil {
		return w.cfg.Addr
	}
	return w.ln.Addr().String()
}

// Shutdown drains like the frontend: stop accepting, wait for in-flight
// handlers up to ctx's deadline, then abort remaining computations and
// drain the pool.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.ready.Store(false)
	err := w.http.Shutdown(ctx)
	w.cancelBase()
	w.pool.Close()
	return err
}
