package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupShares verifies that concurrent callers for one key run
// the computation once and all observe the same bytes.
func TestFlightGroupShares(t *testing.T) {
	g := newFlightGroup(context.Background())
	var begun atomic.Int32
	release := make(chan struct{})

	const callers = 8
	results := make([][]byte, callers)
	shareds := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, shared, err := g.Do(context.Background(), "k", func(_ context.Context, report func([]byte, error)) {
				begun.Add(1)
				go func() {
					<-release
					report([]byte("result"), nil)
				}()
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], shareds[i] = val, shared
		}(i)
	}
	// Let every caller park on the flight before settling it.
	deadline := time.Now().Add(2 * time.Second)
	for begun.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := begun.Load(); n != 1 {
		t.Fatalf("computation began %d times, want 1", n)
	}
	sharedCount := 0
	for i, r := range results {
		if string(r) != "result" {
			t.Fatalf("caller %d got %q", i, r)
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount != callers-1 {
		t.Fatalf("got %d shared callers, want %d", sharedCount, callers-1)
	}
}

// TestFlightGroupWaiterCancel verifies that a cancelled waiter detaches
// with its own context error while the surviving waiter still gets the
// result — the computation is NOT cancelled while anyone waits.
func TestFlightGroupWaiterCancel(t *testing.T) {
	g := newFlightGroup(context.Background())
	release := make(chan struct{})
	var jobCtx context.Context

	started := make(chan struct{})
	type res struct {
		val []byte
		err error
	}
	leader := make(chan res, 1)
	go func() {
		val, _, err := g.Do(context.Background(), "k", func(ctx context.Context, report func([]byte, error)) {
			jobCtx = ctx
			close(started)
			go func() {
				<-release
				report([]byte("v"), nil)
			}()
		})
		leader <- res{val, err}
	}()
	<-started

	// A second waiter joins, then cancels.
	wctx, wcancel := context.WithCancel(context.Background())
	joiner := make(chan res, 1)
	go func() {
		val, _, err := g.Do(wctx, "k", func(context.Context, func([]byte, error)) {
			t.Error("joiner must not begin a new computation")
		})
		joiner <- res{val, err}
	}()
	time.Sleep(10 * time.Millisecond)
	wcancel()
	r := <-joiner
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("joiner error = %v, want context.Canceled", r.err)
	}
	if jobCtx.Err() != nil {
		t.Fatal("job context cancelled while the leader still waits")
	}

	close(release)
	r = <-leader
	if r.err != nil || string(r.val) != "v" {
		t.Fatalf("leader got (%q, %v), want (v, nil)", r.val, r.err)
	}
}

// TestFlightGroupLastWaiterCancels verifies the orphan rule: when every
// waiter abandons the flight, the job context is cancelled and the key is
// freed for a fresh computation.
func TestFlightGroupLastWaiterCancels(t *testing.T) {
	g := newFlightGroup(context.Background())
	var jobCtx context.Context
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(jc context.Context, _ func([]byte, error)) {
			jobCtx = jc
			close(started)
			// Never settles: simulates a long computation.
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-jobCtx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("job context not cancelled after last waiter left")
	}

	// The key must be free: a new Do starts a fresh flight.
	begun := false
	val, _, err := g.Do(context.Background(), "k", func(_ context.Context, report func([]byte, error)) {
		begun = true
		report([]byte("fresh"), nil)
	})
	if !begun || err != nil || string(val) != "fresh" {
		t.Fatalf("fresh flight: begun=%v val=%q err=%v", begun, val, err)
	}
}

// TestFlightGroupLateSettle verifies that a computation settling after
// abandonment does not poison a newer flight under the same key.
func TestFlightGroupLateSettle(t *testing.T) {
	g := newFlightGroup(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	var lateReport func([]byte, error)
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.Do(ctx, "k", func(_ context.Context, report func([]byte, error)) {
			lateReport = report
			close(started)
		})
		close(done)
	}()
	<-started
	cancel()
	<-done

	// New flight under the same key, still running.
	release := make(chan struct{})
	res := make(chan []byte, 1)
	started2 := make(chan struct{})
	go func() {
		val, _, _ := g.Do(context.Background(), "k", func(_ context.Context, report func([]byte, error)) {
			close(started2)
			go func() {
				<-release
				report([]byte("new"), nil)
			}()
		})
		res <- val
	}()
	<-started2

	lateReport([]byte("stale"), nil) // must not touch the new flight
	close(release)
	if val := <-res; string(val) != "new" {
		t.Fatalf("new flight got %q, want new", val)
	}
}

// TestFlightGroupError verifies errors propagate to all waiters.
func TestFlightGroupError(t *testing.T) {
	g := newFlightGroup(context.Background())
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func(_ context.Context, report func([]byte, error)) {
		report(nil, boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failed flight must not be cached: the next Do recomputes.
	val, _, err := g.Do(context.Background(), "k", func(_ context.Context, report func([]byte, error)) {
		report([]byte("ok"), nil)
	})
	if err != nil || string(val) != "ok" {
		t.Fatalf("retry got (%q, %v)", val, err)
	}
}
