package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"readduo/internal/drift"
	"readduo/internal/reliability"
	"readduo/internal/sim"
	"readduo/internal/trace"
)

// Every request type normalizes to a canonical form whose Key() string
// identifies the computation: same key, same bytes. Keys render every
// field explicitly (defaults applied first), so "metric=R" and an empty
// metric produce one cache entry, and float rendering goes through
// strconv's shortest-round-trip %g.

// limits are the admission caps a Server enforces before any work is
// queued; they bound the cost of a single request.
type limits struct {
	MaxGridCells      int    // LER table: len(intervals) * len(eccs)
	MaxMCCells        int    // Monte-Carlo population size
	MaxCompareBudget  uint64 // per-core instruction budget
	MaxCompareSchemes int
}

// badRequestError marks client errors (HTTP 400) apart from compute
// failures.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badf(format string, args ...any) error {
	return badRequestError{fmt.Errorf(format, args...)}
}

// metricConfig resolves the metric name ("R" or "M", case-insensitive)
// and the ambient temperature (0 means the 300 K default) to a drift
// configuration. The returned temperature is always explicit so request
// keys stay canonical: temp omitted and temp=300 are the same entry.
func metricConfig(name string, tempK float64) (string, float64, drift.Config, error) {
	if tempK == 0 {
		tempK = drift.DefaultTempK
	}
	if err := drift.ValidateTempK(tempK); err != nil {
		return "", 0, drift.Config{}, badRequestError{err}
	}
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "R":
		return "R", tempK, drift.RMetricConfigAt(tempK), nil
	case "M":
		return "M", tempK, drift.MMetricConfigAt(tempK), nil
	default:
		return "", 0, drift.Config{}, badf("unknown metric %q (want R or M)", name)
	}
}

// --- LER tables -------------------------------------------------------

// lerRequest asks for the line-error-rate grid of Tables III/IV: one
// readout metric evaluated over scrub intervals x BCH strengths.
type lerRequest struct {
	Metric    string    `json:"metric"`
	TempK     float64   `json:"temp"`
	ECCs      []int     `json:"eccs"`
	Intervals []float64 `json:"intervals"`

	cfg drift.Config
}

func (q *lerRequest) normalize(lim limits) error {
	name, tempK, cfg, err := metricConfig(q.Metric, q.TempK)
	if err != nil {
		return err
	}
	q.Metric, q.TempK, q.cfg = name, tempK, cfg
	if len(q.ECCs) == 0 {
		q.ECCs = reliability.PaperECCs()
	}
	if len(q.Intervals) == 0 {
		q.Intervals = reliability.PaperIntervals()
	}
	for _, e := range q.ECCs {
		if e < 0 || e > 64 {
			return badf("ecc %d out of range 0..64", e)
		}
	}
	for _, s := range q.Intervals {
		if s <= 0 || s > 1e9 {
			return badf("interval %g out of range (0, 1e9] seconds", s)
		}
	}
	if cells := len(q.ECCs) * len(q.Intervals); cells > lim.MaxGridCells {
		return badf("grid of %d cells exceeds the %d-cell cap", cells, lim.MaxGridCells)
	}
	sort.Ints(q.ECCs)
	sort.Float64s(q.Intervals)
	q.ECCs = dedupInts(q.ECCs)
	q.Intervals = dedupFloats(q.Intervals)
	return nil
}

func (q *lerRequest) Key() string {
	return fmt.Sprintf("ler|m=%s|t=%s|e=%s|s=%s",
		q.Metric, strconv.FormatFloat(q.TempK, 'g', -1, 64),
		joinInts(q.ECCs), joinFloats(q.Intervals))
}

// --- Policy checks ----------------------------------------------------

// policyRequest asks for the (BCH=E, S, W) acceptability verdict.
type policyRequest struct {
	Metric string  `json:"metric"`
	TempK  float64 `json:"temp"`
	E      int     `json:"e"`
	S      float64 `json:"s"`
	W      int     `json:"w"`

	cfg drift.Config
}

func (q *policyRequest) normalize(limits) error {
	name, tempK, cfg, err := metricConfig(q.Metric, q.TempK)
	if err != nil {
		return err
	}
	q.Metric, q.TempK, q.cfg = name, tempK, cfg
	if q.E < 0 || q.E > 64 {
		return badf("e=%d out of range 0..64", q.E)
	}
	if q.S <= 0 || q.S > 1e9 {
		return badf("s=%g out of range (0, 1e9] seconds", q.S)
	}
	if q.W < 0 || q.W > q.E {
		return badf("w=%d out of range 0..e (e=%d)", q.W, q.E)
	}
	return nil
}

func (q *policyRequest) Key() string {
	return fmt.Sprintf("policy|m=%s|t=%s|e=%d|s=%s|w=%d",
		q.Metric, strconv.FormatFloat(q.TempK, 'g', -1, 64),
		q.E, strconv.FormatFloat(q.S, 'g', -1, 64), q.W)
}

// --- Monte-Carlo endurance --------------------------------------------

// mcRequest asks for a bounded Monte-Carlo endurance study
// (lifetime.SimulateMCContext).
type mcRequest struct {
	Cells           int     `json:"cells"`
	MedianEndurance float64 `json:"median_endurance"`
	Sigma           float64 `json:"sigma"`
	WearRate        float64 `json:"wear_rate"`
	Seed            int64   `json:"seed"`
	Shards          int     `json:"shards"`
}

func (q *mcRequest) normalize(lim limits) error {
	if q.Cells == 0 {
		q.Cells = 100_000
	}
	if q.Cells < 1 || q.Cells > lim.MaxMCCells {
		return badf("cells=%d out of range 1..%d", q.Cells, lim.MaxMCCells)
	}
	if q.MedianEndurance == 0 {
		q.MedianEndurance = 1e8
	}
	if q.Sigma == 0 {
		q.Sigma = 0.25
	}
	if q.WearRate == 0 {
		q.WearRate = 1e-3
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	if q.Shards == 0 {
		q.Shards = min(q.Cells, 64)
	}
	if q.Shards < 1 || q.Shards > q.Cells {
		return badf("shards=%d out of range 1..cells (%d)", q.Shards, q.Cells)
	}
	// Remaining numeric constraints (positivity) are MCConfig.Validate's
	// job; surface its verdict as a 400, not a compute failure.
	return nil
}

func (q *mcRequest) Key() string {
	return fmt.Sprintf("mc|n=%d|med=%s|sig=%s|rate=%s|seed=%d|shards=%d",
		q.Cells,
		strconv.FormatFloat(q.MedianEndurance, 'g', -1, 64),
		strconv.FormatFloat(q.Sigma, 'g', -1, 64),
		strconv.FormatFloat(q.WearRate, 'g', -1, 64),
		q.Seed, q.Shards)
}

// --- Scheme comparison ------------------------------------------------

// compareRequest asks for a bounded full-system comparison: one
// benchmark, several schemes, a capped instruction budget.
type compareRequest struct {
	Benchmark string   `json:"benchmark"`
	Schemes   []string `json:"schemes"`
	Budget    uint64   `json:"budget"`
	Seed      int64    `json:"seed"`

	bench   trace.Benchmark
	schemes []sim.Scheme
}

func (q *compareRequest) normalize(lim limits) error {
	if q.Benchmark == "" {
		return badf("missing benchmark (known: %s)", strings.Join(benchNames(), ", "))
	}
	bench, ok := trace.ByName(q.Benchmark)
	if !ok {
		return badf("unknown benchmark %q (known: %s)", q.Benchmark, strings.Join(benchNames(), ", "))
	}
	q.bench, q.Benchmark = bench, bench.Name
	if len(q.Schemes) == 0 {
		return badf("missing schemes (e.g. [\"Ideal\",\"LWT-4\"])")
	}
	if len(q.Schemes) > lim.MaxCompareSchemes {
		return badf("%d schemes exceed the %d-scheme cap", len(q.Schemes), lim.MaxCompareSchemes)
	}
	q.schemes = q.schemes[:0]
	seen := map[string]bool{}
	canonical := make([]string, 0, len(q.Schemes))
	for _, spec := range q.Schemes {
		sch, err := sim.Parse(spec)
		if err != nil {
			return badRequestError{err}
		}
		if seen[sch.Name()] {
			return badf("scheme %q listed twice", sch.Name())
		}
		seen[sch.Name()] = true
		q.schemes = append(q.schemes, sch)
		canonical = append(canonical, sch.Name())
	}
	q.Schemes = canonical
	if q.Budget == 0 {
		q.Budget = 25_000
	}
	if q.Budget > lim.MaxCompareBudget {
		return badf("budget %d exceeds the %d-instruction cap", q.Budget, lim.MaxCompareBudget)
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return nil
}

func (q *compareRequest) Key() string {
	return fmt.Sprintf("compare|b=%s|schemes=%s|budget=%d|seed=%d",
		q.Benchmark, strings.Join(q.Schemes, ","), q.Budget, q.Seed)
}

// --- Decoding ---------------------------------------------------------

// decodeRequest fills dst from a POST JSON body or GET query parameters.
// Unknown JSON fields are rejected so typos fail loudly (mirroring the
// scheme parser's rejectUnknown).
func decodeRequest(r *http.Request, dst any, fromQuery func(qv *queryValues) error) error {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return badf("bad JSON body: %v", err)
		}
		return nil
	case http.MethodGet:
		qv := &queryValues{values: r.URL.Query()}
		if err := fromQuery(qv); err != nil {
			return err
		}
		return qv.leftover()
	default:
		return badf("method %s not allowed", r.Method)
	}
}

// queryValues is a consuming view over URL query parameters: every Get
// marks the key used, and leftover() rejects whatever remains, so
// ?celsl=5 is an error rather than a silent default.
type queryValues struct {
	values map[string][]string
	used   map[string]bool
}

func (q *queryValues) get(key string) string {
	if q.used == nil {
		q.used = map[string]bool{}
	}
	q.used[key] = true
	vs := q.values[key]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

func (q *queryValues) leftover() error {
	for key := range q.values {
		if !q.used[key] {
			return badf("unknown query parameter %q", key)
		}
	}
	return nil
}

func (q *queryValues) str(key string, dst *string) error {
	if v := q.get(key); v != "" {
		*dst = v
	}
	return nil
}

func (q *queryValues) int(key string, dst *int) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return badf("parameter %s=%q is not an integer", key, v)
	}
	*dst = n
	return nil
}

func (q *queryValues) int64(key string, dst *int64) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return badf("parameter %s=%q is not an integer", key, v)
	}
	*dst = n
	return nil
}

func (q *queryValues) uint64(key string, dst *uint64) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return badf("parameter %s=%q is not a non-negative integer", key, v)
	}
	*dst = n
	return nil
}

func (q *queryValues) float(key string, dst *float64) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return badf("parameter %s=%q is not a number", key, v)
	}
	*dst = f
	return nil
}

func (q *queryValues) intList(key string, dst *[]int) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	out, err := splitInts(v)
	if err != nil {
		return badf("parameter %s=%q: %v", key, v, err)
	}
	*dst = out
	return nil
}

func (q *queryValues) floatList(key string, dst *[]float64) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return badf("parameter %s=%q is not a number list", key, v)
		}
		out = append(out, f)
	}
	*dst = out
	return nil
}

func (q *queryValues) strList(key string, dst *[]string) error {
	v := q.get(key)
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	*dst = out
	return nil
}

// --- small helpers ----------------------------------------------------

func benchNames() []string {
	// Names covers registered corpus scenarios as well as the built-in
	// suite, so error messages advertise the full spec grammar.
	return trace.Names()
}

func splitInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("not an integer list")
		}
		out = append(out, n)
	}
	return out, nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func dedupInts(sorted []int) []int {
	out := sorted[:0]
	for i, x := range sorted {
		if i == 0 || x != sorted[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, x := range sorted {
		if i == 0 || x != sorted[i-1] {
			out = append(out, x)
		}
	}
	return out
}
