// Package energy provides the dynamic- and system-energy accounting for the
// ReadDuo evaluation (the paper's Table IX and Figures 10/11).
//
// Substitution note: the published table's numeric cells are not legible in
// the available text, so the per-cell energies below are drawn from the MLC
// PCM literature the paper cites (iterative program-and-verify writes cost
// tens of pJ per cell; voltage sensing holds the bias ~3x longer than
// current sensing, costing proportionally more). All figures that use them
// are reported normalized, which is what the paper reports too, so the
// ratios — not the absolute pJ — carry the results.
package energy

import (
	"fmt"
	"time"
)

// Params holds per-operation energies in picojoules and the background
// power used for system energy.
type Params struct {
	// RReadPerCell is the current-sensing read energy per MLC cell.
	RReadPerCell float64
	// MReadPerCell is the voltage-sensing read energy per MLC cell; the
	// 450 ns sensing window burns ~3x the 150 ns current sense.
	MReadPerCell float64
	// WritePerCell is the average iterative P&V programming energy per
	// MLC cell.
	WritePerCell float64
	// FlagBitAccess is the SLC flag read/update energy per bit.
	FlagBitAccess float64
	// StaticPowerWatts is the background power of the PCM rank plus its
	// bridge/ECC chips, charged against wall-clock time for Product-S.
	StaticPowerWatts float64
}

// DefaultParams returns the configuration used throughout the evaluation.
func DefaultParams() Params {
	return Params{
		RReadPerCell:     2.0,  // pJ
		MReadPerCell:     6.0,  // pJ
		WritePerCell:     50.0, // pJ
		FlagBitAccess:    0.2,  // pJ
		StaticPowerWatts: 0.35, // W per rank
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.RReadPerCell <= 0 || p.MReadPerCell <= 0 || p.WritePerCell <= 0 {
		return fmt.Errorf("energy: per-cell energies must be positive: %+v", p)
	}
	if p.FlagBitAccess < 0 || p.StaticPowerWatts < 0 {
		return fmt.Errorf("energy: flag/static parameters must be nonnegative: %+v", p)
	}
	return nil
}

// Accounting accumulates energy over a simulation run. The zero value is
// unusable; construct with NewAccounting.
type Accounting struct {
	params Params

	rReadCells      uint64
	mReadCells      uint64
	writeCells      uint64
	flagBits        uint64
	scrubReadCellsR uint64
	scrubReadCellsM uint64
	scrubWriteCells uint64
}

// NewAccounting builds an accumulator with the given parameters.
func NewAccounting(params Params) (*Accounting, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Accounting{params: params}, nil
}

// AddRRead charges a demand R-read of cells MLC cells.
func (a *Accounting) AddRRead(cells int) { a.rReadCells += uint64(cells) }

// AddMRead charges a demand M-read.
func (a *Accounting) AddMRead(cells int) { a.mReadCells += uint64(cells) }

// AddRMRead charges an R-M-read: both sensing rounds touch every cell.
func (a *Accounting) AddRMRead(cells int) {
	a.rReadCells += uint64(cells)
	a.mReadCells += uint64(cells)
}

// AddWrite charges programming of cellsWritten cells (full-line or
// differential; callers pass the actual programmed count).
func (a *Accounting) AddWrite(cellsWritten int) { a.writeCells += uint64(cellsWritten) }

// AddFlagAccess charges an SLC flag read or update of the given bit count.
func (a *Accounting) AddFlagAccess(nbits int) { a.flagBits += uint64(nbits) }

// AddScrubRead charges a scrub scan read (voltage indicates M-sensing).
func (a *Accounting) AddScrubRead(cells int, voltage bool) {
	if voltage {
		a.scrubReadCellsM += uint64(cells)
	} else {
		a.scrubReadCellsR += uint64(cells)
	}
}

// AddScrubWrite charges a scrub rewrite.
func (a *Accounting) AddScrubWrite(cellsWritten int) { a.scrubWriteCells += uint64(cellsWritten) }

// Counts is a detached bundle of the raw cell counters an Accounting
// accumulates. The parallel memory-controller engine charges each bank's
// events into a private Counts and merges them at the window barrier;
// because every counter is a plain sum, the merge is exactly equal to
// having charged the accounting event by event.
type Counts struct {
	RReadCells      uint64
	MReadCells      uint64
	WriteCells      uint64
	FlagBits        uint64
	ScrubReadCellsR uint64
	ScrubReadCellsM uint64
	ScrubWriteCells uint64
}

// AddCounts folds a detached counter bundle into the accounting.
func (a *Accounting) AddCounts(c Counts) {
	a.rReadCells += c.RReadCells
	a.mReadCells += c.MReadCells
	a.writeCells += c.WriteCells
	a.flagBits += c.FlagBits
	a.scrubReadCellsR += c.ScrubReadCellsR
	a.scrubReadCellsM += c.ScrubReadCellsM
	a.scrubWriteCells += c.ScrubWriteCells
}

// Breakdown itemizes accumulated dynamic energy in picojoules.
type Breakdown struct {
	ReadPJ       float64
	WritePJ      float64
	ScrubReadPJ  float64
	ScrubWritePJ float64
	FlagPJ       float64
}

// Total returns the summed dynamic energy in pJ.
func (b Breakdown) Total() float64 {
	return b.ReadPJ + b.WritePJ + b.ScrubReadPJ + b.ScrubWritePJ + b.FlagPJ
}

// Sub returns the component-wise difference b - base, used to report a
// measurement window that excludes simulator warmup.
func (b Breakdown) Sub(base Breakdown) Breakdown {
	return Breakdown{
		ReadPJ:       b.ReadPJ - base.ReadPJ,
		WritePJ:      b.WritePJ - base.WritePJ,
		ScrubReadPJ:  b.ScrubReadPJ - base.ScrubReadPJ,
		ScrubWritePJ: b.ScrubWritePJ - base.ScrubWritePJ,
		FlagPJ:       b.FlagPJ - base.FlagPJ,
	}
}

// Dynamic returns the itemized dynamic energy.
func (a *Accounting) Dynamic() Breakdown {
	p := a.params
	return Breakdown{
		ReadPJ:       float64(a.rReadCells)*p.RReadPerCell + float64(a.mReadCells)*p.MReadPerCell,
		WritePJ:      float64(a.writeCells) * p.WritePerCell,
		ScrubReadPJ:  float64(a.scrubReadCellsR)*p.RReadPerCell + float64(a.scrubReadCellsM)*p.MReadPerCell,
		ScrubWritePJ: float64(a.scrubWriteCells) * p.WritePerCell,
		FlagPJ:       float64(a.flagBits) * p.FlagBitAccess,
	}
}

// System returns dynamic energy plus static power integrated over the run
// duration, in pJ — the paper's Product-S energy term.
func (a *Accounting) System(duration time.Duration) float64 {
	staticPJ := a.params.StaticPowerWatts * duration.Seconds() * 1e12
	return a.Dynamic().Total() + staticPJ
}

// WriteCellCount reports total programmed cells (demand + scrub), the
// quantity lifetime is computed from.
func (a *Accounting) WriteCellCount() uint64 {
	return a.writeCells + a.scrubWriteCells
}
