package energy

import (
	"math"
	"testing"
	"time"
)

func mustAcct(t *testing.T) *Accounting {
	t.Helper()
	a, err := NewAccounting(DefaultParams())
	if err != nil {
		t.Fatalf("NewAccounting: %v", err)
	}
	return a
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams()
	bad.WritePerCell = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero write energy accepted")
	}
	bad = DefaultParams()
	bad.StaticPowerWatts = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative static power accepted")
	}
	if _, err := NewAccounting(bad); err == nil {
		t.Error("NewAccounting accepted invalid params")
	}
}

func TestVoltageSensingCostsMore(t *testing.T) {
	p := DefaultParams()
	if p.MReadPerCell <= p.RReadPerCell {
		t.Error("M-read per cell must cost more than R-read (3x sensing window)")
	}
	if p.WritePerCell <= p.MReadPerCell {
		t.Error("P&V write must dominate read energy")
	}
}

func TestDynamicBreakdown(t *testing.T) {
	a := mustAcct(t)
	p := DefaultParams()
	a.AddRRead(296)
	a.AddMRead(296)
	a.AddWrite(296)
	a.AddFlagAccess(6)
	a.AddScrubRead(296, true)
	a.AddScrubWrite(132)

	b := a.Dynamic()
	wantRead := 296*p.RReadPerCell + 296*p.MReadPerCell
	if math.Abs(b.ReadPJ-wantRead) > 1e-9 {
		t.Errorf("ReadPJ = %v, want %v", b.ReadPJ, wantRead)
	}
	if math.Abs(b.WritePJ-296*p.WritePerCell) > 1e-9 {
		t.Errorf("WritePJ = %v", b.WritePJ)
	}
	if math.Abs(b.ScrubReadPJ-296*p.MReadPerCell) > 1e-9 {
		t.Errorf("ScrubReadPJ = %v", b.ScrubReadPJ)
	}
	if math.Abs(b.ScrubWritePJ-132*p.WritePerCell) > 1e-9 {
		t.Errorf("ScrubWritePJ = %v", b.ScrubWritePJ)
	}
	if math.Abs(b.FlagPJ-6*p.FlagBitAccess) > 1e-9 {
		t.Errorf("FlagPJ = %v", b.FlagPJ)
	}
	sum := b.ReadPJ + b.WritePJ + b.ScrubReadPJ + b.ScrubWritePJ + b.FlagPJ
	if math.Abs(b.Total()-sum) > 1e-9 {
		t.Errorf("Total %v != sum %v", b.Total(), sum)
	}
}

func TestRMReadChargesBothRounds(t *testing.T) {
	a := mustAcct(t)
	a.AddRMRead(296)
	b := a.Dynamic()
	p := DefaultParams()
	want := 296 * (p.RReadPerCell + p.MReadPerCell)
	if math.Abs(b.ReadPJ-want) > 1e-9 {
		t.Errorf("R-M-read energy %v, want %v", b.ReadPJ, want)
	}
}

func TestSystemIncludesStatic(t *testing.T) {
	a := mustAcct(t)
	a.AddRRead(296)
	dyn := a.Dynamic().Total()
	dur := 10 * time.Millisecond
	sys := a.System(dur)
	wantStatic := DefaultParams().StaticPowerWatts * dur.Seconds() * 1e12
	if math.Abs(sys-(dyn+wantStatic)) > 1e-3 {
		t.Errorf("System = %v, want %v", sys, dyn+wantStatic)
	}
	if sys <= dyn {
		t.Error("system energy must exceed dynamic energy for positive durations")
	}
}

func TestWriteCellCount(t *testing.T) {
	a := mustAcct(t)
	a.AddWrite(296)
	a.AddWrite(130)
	a.AddScrubWrite(296)
	if got := a.WriteCellCount(); got != 722 {
		t.Errorf("WriteCellCount = %d, want 722", got)
	}
}
