package readduo_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"readduo"
)

// The facade tests exercise the library the way a downstream user would:
// only through the public API.

func TestPublicPolicyPlanning(t *testing.T) {
	rAn, err := readduo.NewReliabilityAnalyzer(readduo.RMetric())
	if err != nil {
		t.Fatalf("NewReliabilityAnalyzer: %v", err)
	}
	rep, err := rAn.Check(readduo.ScrubPolicy{E: 8, S: 8, W: 0})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !rep.Meets {
		t.Error("paper's R-sensing baseline rejected")
	}
	mAn, err := readduo.NewReliabilityAnalyzer(readduo.MMetric())
	if err != nil {
		t.Fatal(err)
	}
	rep, err = mAn.Check(readduo.ScrubPolicy{E: 8, S: 640, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Meets {
		t.Error("ReadDuo's M-scrub policy rejected")
	}
	if readduo.DRAMTargetLER(640) <= 0 {
		t.Error("DRAM target not positive")
	}
}

func TestPublicCodecRoundTrip(t *testing.T) {
	code, err := readduo.NewLineCode()
	if err != nil {
		t.Fatalf("NewLineCode: %v", err)
	}
	data := make([]byte, code.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	parity, err := code.Encode(data)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Corrupt three bits and repair.
	orig := append([]byte(nil), data...)
	for _, pos := range []int{5, 100, 500} {
		data[pos/8] ^= 1 << (pos % 8)
	}
	res, err := code.Decode(data, parity)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if res.Status != readduo.DecodeCorrected || !bytes.Equal(data, orig) {
		t.Errorf("decode status %v, repaired=%v", res.Status, bytes.Equal(data, orig))
	}
}

func TestPublicLineLifecycle(t *testing.T) {
	line, err := readduo.NewMLCLine()
	if err != nil {
		t.Fatalf("NewMLCLine: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, line.DataBytes())
	rng.Read(payload)
	if err := line.Write(payload, 0, rng); err != nil {
		t.Fatalf("Write: %v", err)
	}
	res, err := line.Read(readduo.LineReadM, 640)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Error("payload lost through drift + M-read")
	}
}

func TestPublicTrackingTrio(t *testing.T) {
	tr, err := readduo.NewTracker(4)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	if err := tr.RecordWrite(1); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.AllowRSense(2)
	if err != nil || !ok {
		t.Errorf("AllowRSense = %v, %v", ok, err)
	}
	conv, err := readduo.NewConverter()
	if err != nil {
		t.Fatal(err)
	}
	if conv.T() != 50 {
		t.Errorf("converter T = %d", conv.T())
	}
	pol, err := readduo.NewSDWPolicy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mode, err := pol.Decide(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mode != readduo.WriteDifferential {
		t.Errorf("SDW decision = %v, want differential within s", mode)
	}
}

func TestPublicSimulation(t *testing.T) {
	cfg, err := readduo.SimConfigFor("gcc")
	if err != nil {
		t.Fatalf("SimConfigFor: %v", err)
	}
	cfg.CPU.InstrBudget = 30_000
	res, err := readduo.Simulate(cfg, readduo.SchemeLWT(4, true))
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.ExecTime <= 0 || res.Scheme != "LWT-4" {
		t.Errorf("result %+v", res)
	}
	if _, err := readduo.SimConfigFor("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicSchemeComposition(t *testing.T) {
	s, err := readduo.ParseScheme("lwt:k=8")
	if err != nil || s.Name() != "LWT-8" {
		t.Fatalf("ParseScheme = %v, %v", s.Name(), err)
	}
	list, err := readduo.ParseSchemes("Ideal,LWT-8,Select-4:2")
	if err != nil || len(list) != 3 {
		t.Fatalf("ParseSchemes = %d schemes, %v", len(list), err)
	}
	if len(readduo.SchemeGrammars()) == 0 {
		t.Error("no scheme grammars registered")
	}
	if got := len(readduo.AllSchemes()); got != 7 {
		t.Errorf("AllSchemes = %d", got)
	}
	if got := len(readduo.PriorSchemes()) + len(readduo.ReadDuoSchemes()); got != 8 {
		t.Errorf("prior+readduo = %d schemes", got)
	}

	// A design point the paper never built: tracked sensing over plain
	// full writes, scrubbed on the M metric.
	custom := readduo.ComposeScheme("lwt8-over-select", readduo.SchemeDesign{
		Sense: readduo.TrackedSensePolicy(8, true),
		Scrub: readduo.IntervalScrubPolicy(640*time.Second, readduo.MetricM, 0),
		Write: readduo.SelectWritePolicy(8, 4),
	})
	if err := custom.Validate(); err != nil {
		t.Fatalf("custom scheme invalid: %v", err)
	}
	cfg, err := readduo.SimConfigFor("gcc")
	if err != nil {
		t.Fatal(err)
	}
	cfg.CPU.InstrBudget = 30_000
	res, err := readduo.Simulate(cfg, custom)
	if err != nil {
		t.Fatalf("Simulate(custom): %v", err)
	}
	if res.Scheme != "lwt8-over-select" || res.ExecTime <= 0 {
		t.Errorf("custom result %+v", res)
	}
}

func TestPublicSuiteAndMetrics(t *testing.T) {
	if got := len(readduo.Benchmarks()); got != 14 {
		t.Errorf("suite size %d", got)
	}
	if _, ok := readduo.BenchmarkByName("mcf"); !ok {
		t.Error("mcf missing")
	}
	edap, err := readduo.EDAP(2, 3, 4)
	if err != nil || edap != 24 {
		t.Errorf("EDAP = %v, %v", edap, err)
	}
	imp, err := readduo.Improvement(100, 63)
	if err != nil || imp != 0.37 {
		t.Errorf("Improvement = %v, %v", imp, err)
	}
	mlc, err := readduo.MLCLineFootprint(80, 6)
	if err != nil || mlc.EquivalentCells() != 302 {
		t.Errorf("MLC footprint = %v, %v", mlc.EquivalentCells(), err)
	}
	if tlc := readduo.TLCLineFootprint(); tlc.EquivalentCells() != 384 {
		t.Errorf("TLC footprint = %v", tlc.EquivalentCells())
	}
	ovh, err := readduo.HybridSenseAmpOverhead()
	if err != nil || ovh < 0.002 || ovh > 0.004 {
		t.Errorf("sense amp overhead = %v, %v", ovh, err)
	}
	rel, err := readduo.RelativeLifetime(1000, 700)
	if err != nil || rel <= 1.4 || rel >= 1.5 {
		t.Errorf("RelativeLifetime = %v, %v", rel, err)
	}
	lm, err := readduo.NewLifetimeModel(1e8, 1e9)
	if err != nil || lm == nil {
		t.Errorf("NewLifetimeModel: %v", err)
	}
}

func TestPublicPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop, err := readduo.NewMLCPopulation(2, 1000, rng)
	if err != nil {
		t.Fatalf("NewMLCPopulation: %v", err)
	}
	if pop.Size() != 1000 {
		t.Errorf("Size = %d", pop.Size())
	}
	if h := pop.Histogram(0, 4.4, 5.7, 10); len(h) != 10 {
		t.Errorf("histogram bins = %d", len(h))
	}
}

func TestVersion(t *testing.T) {
	if readduo.Version == "" {
		t.Error("empty version")
	}
}

func TestPublicHardErrorSubstrates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	line, err := readduo.NewMLCLine()
	if err != nil {
		t.Fatal(err)
	}
	line.ArmWearout(30, 0.25, rng)
	pl, err := readduo.NewECPLine(line, 8)
	if err != nil {
		t.Fatalf("NewECPLine: %v", err)
	}
	data := make([]byte, pl.DataBytes())
	var exhausted bool
	for w := 0; w < 80; w++ {
		rng.Read(data)
		if err := pl.Write(data, float64(w), rng); err != nil {
			if !errors.Is(err, readduo.ErrECPExhausted) {
				t.Fatalf("write: %v", err)
			}
			exhausted = true
			break
		}
		res, err := pl.Read(readduo.LineReadR, float64(w))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatal("ECP lost data while under capacity")
		}
	}
	if !exhausted {
		t.Error("endurance-30 hammering never exhausted ECP-8")
	}

	sg, err := readduo.NewStartGap(32, 16)
	if err != nil {
		t.Fatalf("NewStartGap: %v", err)
	}
	if _, err := sg.Map(5); err != nil {
		t.Errorf("Map: %v", err)
	}
	var moved bool
	for i := 0; i < 64; i++ {
		if _, ok := sg.OnWrite(); ok {
			moved = true
		}
	}
	if !moved {
		t.Error("Start-Gap never moved over 64 writes at psi=16")
	}
}

func TestPublicPhysicsFamilies(t *testing.T) {
	// The LWC family and the environment axis through the public facade.
	lwc := readduo.SchemeLWC(16)
	if lwc.Name() != "LWC-16" {
		t.Fatalf("SchemeLWC(16).Name() = %q", lwc.Name())
	}
	cryo, err := readduo.SchemeAtEnv(readduo.SchemeScrubbing(), readduo.SchemeEnvironment{TempK: 250})
	if err != nil {
		t.Fatalf("SchemeAtEnv: %v", err)
	}
	if cryo.Name() != "Scrubbing@temp=250" {
		t.Fatalf("cryo scheme name %q", cryo.Name())
	}
	// The default environment is the identity, keeping cache keys stable.
	same, err := readduo.SchemeAtEnv(lwc, readduo.SchemeEnvironment{TempK: 300})
	if err != nil {
		t.Fatal(err)
	}
	if same != lwc {
		t.Errorf("default environment changed the scheme: %+v", same)
	}
	for _, spec := range []string{"lwc:r=16", "scrubbing:temp=250", "LWT-4@disturb=1e-06"} {
		s, err := readduo.ParseScheme(spec)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", spec, err)
			continue
		}
		if back, err := readduo.ParseScheme(s.Name()); err != nil || back != s {
			t.Errorf("%q does not round-trip through its name %q: %v", spec, s.Name(), err)
		}
	}
}
