// Quickstart walks the three layers of the readduo library in one sitting:
//
//  1. plan a scrub policy analytically (can MLC PCM match DRAM
//     reliability?),
//  2. exercise a Monte-Carlo MLC line with BCH protection through drift,
//     and
//  3. run a small full-system simulation comparing ReadDuo to the
//     M-metric-only baseline.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"readduo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")
	planPolicy()
	driveLine()
	simulate()
}

// planPolicy reproduces the paper's §III policy analysis in a few calls.
func planPolicy() {
	fmt.Println("== 1. Scrub-policy planning ==")
	rAn, err := readduo.NewReliabilityAnalyzer(readduo.RMetric())
	if err != nil {
		log.Fatal(err)
	}
	mAn, err := readduo.NewReliabilityAnalyzer(readduo.MMetric())
	if err != nil {
		log.Fatal(err)
	}
	policies := []struct {
		an *readduo.ReliabilityAnalyzer
		p  readduo.ScrubPolicy
	}{
		{rAn, readduo.ScrubPolicy{E: 8, S: 8, W: 1}},   // fails (ii): needs W=0
		{rAn, readduo.ScrubPolicy{E: 8, S: 8, W: 0}},   // the Scrubbing baseline
		{mAn, readduo.ScrubPolicy{E: 8, S: 640, W: 1}}, // ReadDuo's relaxed M-scrub
		{rAn, readduo.ScrubPolicy{E: 8, S: 640, W: 0}}, // R-sensing cannot stretch to 640s
	}
	for _, pp := range policies {
		rep, err := pp.an.Check(pp.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %v  -> meets DRAM budget: %v (P_i=%.2e, budget %.2e)\n",
			pp.an.Metric(), pp.p, rep.Meets, rep.FirstInterval, rep.TargetFirst)
	}
	fmt.Println()
}

// driveLine writes a BCH-8-protected MLC line, lets it drift for 640
// seconds, and reads it back with both sensing circuits.
func driveLine() {
	fmt.Println("== 2. Monte-Carlo line through 640 s of drift ==")
	line, err := readduo.NewMLCLine()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	payload := make([]byte, line.DataBytes())
	rng.Read(payload)
	if err := line.Write(payload, 0, rng); err != nil {
		log.Fatal(err)
	}
	for _, metric := range []readduo.LineReadMetric{readduo.LineReadR, readduo.LineReadM} {
		res, err := line.Read(metric, 640)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  metric %v: %d drifted cells, ECC status %v, payload intact: %v\n",
			metric, res.CellErrors, res.Status, bytes.Equal(res.Data, payload))
	}
	fmt.Println()
}

// simulate compares ReadDuo-LWT-4 against the all-voltage-sensing baseline
// on the mcf workload.
func simulate() {
	fmt.Println("== 3. Full-system simulation on mcf ==")
	cfg, err := readduo.SimConfigFor("mcf")
	if err != nil {
		log.Fatal(err)
	}
	cfg.CPU.InstrBudget = 400_000 // keep the example snappy
	var baseline float64
	for _, scheme := range []readduo.Scheme{
		readduo.SchemeIdeal(), readduo.SchemeMMetric(), readduo.SchemeLWT(4, true),
	} {
		res, err := readduo.Simulate(cfg, scheme)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = float64(res.ExecTime)
		}
		fmt.Printf("  %-9s exec %v (%.2fx Ideal), reads R/M/RM = %d/%d/%d\n",
			res.Scheme, res.ExecTime, float64(res.ExecTime)/baseline,
			res.RReads, res.MReads, res.RMReads)
	}
}
