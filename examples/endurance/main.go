// Example endurance exercises the hard-error side of the MLC PCM story —
// the directions the ReadDuo paper marks as orthogonal in §III-E and §VI:
//
//  1. cells wear out permanently under write pressure (lognormal endurance);
//  2. an ECP table repairs stuck cells detected by program-and-verify, so
//     the BCH-8 budget stays dedicated to drift errors;
//  3. Start-Gap wear leveling rotates a hot line across the array so no
//     single physical line absorbs the hammering.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"readduo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("endurance: ")
	rng := rand.New(rand.NewSource(7))

	ecpDemo(rng)
	startGapDemo(rng)
}

// ecpDemo hammers one line with a tiny sampled endurance and shows ECP
// absorbing the hard failures until its pointers run out.
func ecpDemo(rng *rand.Rand) {
	fmt.Println("== ECP: riding through stuck cells ==")
	line, err := readduo.NewMLCLine()
	if err != nil {
		log.Fatal(err)
	}
	// Median endurance of 40 writes (real cells: ~1e8) so failures arrive
	// within the demo.
	line.ArmWearout(40, 0.25, rng)
	pl, err := readduo.NewECPLine(line, 12)
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	lastUsed := 0
	for w := 1; ; w++ {
		rng.Read(data)
		if err := pl.Write(data, float64(w), rng); err != nil {
			if errors.Is(err, readduo.ErrECPExhausted) {
				fmt.Printf("  write %3d: ECP-12 exhausted (%d cells stuck) -> decommission the line\n",
					w, len(line.StuckCells()))
				break
			}
			log.Fatal(err)
		}
		res, err := pl.Read(readduo.LineReadR, float64(w))
		if err != nil {
			log.Fatal(err)
		}
		if res.Status == readduo.DecodeUncorrectable {
			log.Fatal("payload lost while ECP had capacity")
		}
		if used := pl.Table().Used(); used > 0 && (w%10 == 0 || used != lastUsed) {
			fmt.Printf("  write %3d: %2d stuck cells repaired by ECP, payload intact\n", w, used)
			lastUsed = used
		}
	}
	fmt.Printf("  ECP-12 storage cost: %d SLC bits per line\n\n", pl.Table().StorageBits())
}

// startGapDemo hammers one logical line behind a Start-Gap mapper and shows
// the writes spreading across physical slots.
func startGapDemo(rng *rand.Rand) {
	fmt.Println("== Start-Gap: spreading a hot line's wear ==")
	const lines = 16
	sg, err := readduo.NewStartGap(lines, 8)
	if err != nil {
		log.Fatal(err)
	}
	wear := make([]int, sg.PhysicalSlots())
	const writes = 16 * 17 * 8 * 4 // four full rotations
	for i := 0; i < writes; i++ {
		hot := uint64(0)
		if rng.Intn(10) == 0 {
			hot = uint64(rng.Intn(lines)) // 10% background traffic
		}
		pa, err := sg.Map(hot)
		if err != nil {
			log.Fatal(err)
		}
		wear[pa]++
		if mv, ok := sg.OnWrite(); ok {
			_ = mv // the controller would copy mv.From -> mv.To here
		}
	}
	max, min := 0, writes
	for _, w := range wear {
		if w > max {
			max = w
		}
		if w < min {
			min = w
		}
	}
	fmt.Printf("  %d writes, 90%% to one logical line, across %d physical slots\n",
		writes, sg.PhysicalSlots())
	fmt.Printf("  per-slot wear: min %d, max %d (max/mean %.2fx); %d gap copies (1/8 overhead)\n",
		min, max, float64(max)*float64(sg.PhysicalSlots())/float64(writes), sg.GapMoves())
	fmt.Println("  without leveling one slot would absorb ~90% of all writes.")
}
