// Example drift-explorer visualizes the physics behind the paper's
// Figure 6: why MLC PCM writes normally must re-program every cell. It
// evolves a cohort of level-'10' cells over time, prints ASCII histograms
// of the resistance distribution, and contrasts a full rewrite (which
// restores the programmed normal distribution) with a selective rewrite of
// only the drifted cells (which leaves a crowd stranded next to the state
// boundary, primed to fail during the next scrub interval).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"readduo"
)

const (
	cohort = 200000
	level  = 2 // state '10': the most error-prone middle level
	bins   = 48
	lo, hi = 4.4, 5.7 // log10 R range around level 2 (mu=5, boundary 5.5)
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drift-explorer: ")
	rng := rand.New(rand.NewSource(1))

	fresh, err := readduo.NewMLCPopulation(level, cohort, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fresh cells (t = 0): programmed into the 2.746-sigma window")
	show(fresh, 0)

	const age = 640.0
	fmt.Printf("\nafter %g s of drift: the distribution leans into the guard band\n", age)
	show(fresh, age)
	drifted := fresh.DriftedCells(age)
	fmt.Printf("drifted across the boundary: %d of %d cells (%.3f%%)\n",
		len(drifted), cohort, 100*float64(len(drifted))/cohort)

	// Figure 6b: selective rewrite of only the drifted cells.
	fresh.RewriteCells(drifted, age, rng)
	fmt.Println("\nFigure 6b — selective rewrite of drifted cells only:")
	show(fresh, age)
	fmt.Printf("guard-band crowding (last quarter before the boundary): %.2f%%\n",
		100*fresh.GuardBandMass(age, 0.25))

	// Figure 6a: a second cohort, full-line rewrite.
	full, err := readduo.NewMLCPopulation(level, cohort, rng)
	if err != nil {
		log.Fatal(err)
	}
	full.RewriteAll(age, rng)
	fmt.Println("\nFigure 6a — full rewrite of every cell:")
	show(full, age)
	fmt.Printf("guard-band crowding after full rewrite: %.2f%%\n",
		100*full.GuardBandMass(age, 0.25))

	fmt.Println("\nthe crowded guard band is why ReadDuo-Select bounds differential")
	fmt.Println("writes to s sub-intervals after a full write instead of banning them.")
}

func show(p *readduo.Population, at float64) {
	counts := p.Histogram(at, lo, hi, bins)
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		x := lo + (hi-lo)*(float64(i)+0.5)/bins
		bar := strings.Repeat("#", c*50/max)
		marker := " "
		if x < 5.5 && lo+(hi-lo)*(float64(i)+1.5)/bins >= 5.5 {
			marker = "<- state boundary (5.5)"
		}
		fmt.Printf("  %5.2f %-50s %s\n", x, bar, marker)
	}
}
