// Example scrubplanner uses the reliability analyzer as a design tool: give
// it a soft-error budget and it searches the (BCH strength, scrub interval,
// rewrite threshold) space for the cheapest policies that meet it under
// each readout metric — the workflow behind the paper's Tables III-V.
//
// Usage:
//
//	go run ./examples/scrubplanner [-fit=25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"readduo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scrubplanner: ")
	fit := flag.Float64("fit", 25, "target soft-error rate in FIT per Mbit (DRAM-class: 25)")
	flag.Parse()

	// The library's budget is fixed at the paper's 25 FIT/Mbit; scale the
	// verdicts for other targets by comparing against a scaled budget.
	scale := *fit / 25
	if scale <= 0 {
		log.Fatal("FIT target must be positive")
	}
	fmt.Printf("searching policies for %.0f FIT/Mbit (budget %.3g per line-second)\n\n",
		*fit, readduo.DRAMTargetLER(1)*scale)

	for _, mc := range []struct {
		name string
		cfg  readduo.DriftConfig
	}{
		{"R-metric (fast current sensing)", readduo.RMetric()},
		{"M-metric (drift-resilient voltage sensing)", readduo.MMetric()},
	} {
		an, err := readduo.NewReliabilityAnalyzer(mc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(mc.name)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  interval\tmin BCH (W=0)\tW=1 safe with that BCH\tscrub reads/GB/s")
		for _, s := range []float64{8, 64, 640, 16384} {
			e, ok := minECCScaled(an, s, scale)
			if !ok {
				fmt.Fprintf(tw, "  %gs\tnone <= 24\t-\t-\n", s)
				continue
			}
			rep, err := an.Check(readduo.ScrubPolicy{E: e, S: s, W: 1})
			if err != nil {
				log.Fatal(err)
			}
			// A 1 GB region is 2^24 64-byte lines.
			rate := float64(1<<24) / s
			fmt.Fprintf(tw, "  %gs\tBCH-%d\t%v\t%.0f\n", s, e, rep.Meets, rate)
		}
		tw.Flush()
		fmt.Println()
	}
	fmt.Println("reading the table: ReadDuo pairs the fast metric's reads with the")
	fmt.Println("slow metric's relaxed scrubbing — BCH-8 at 640s under M-sensing costs")
	fmt.Println("~26k scrub reads/GB/s versus ~2M at the 8s interval R-sensing needs.")
}

// minECCScaled finds the smallest BCH strength meeting the scaled budget.
func minECCScaled(an *readduo.ReliabilityAnalyzer, s, scale float64) (int, bool) {
	for e := 0; e <= 24; e++ {
		if an.LER(e, s) <= readduo.DRAMTargetLER(s)*scale {
			return e, true
		}
	}
	return 0, false
}
