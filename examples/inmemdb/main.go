// Example inmemdb reproduces the scenario §III-C of the paper calls out as
// the worst case for last-write tracking: an in-memory database is built
// once and then queried for a long time, so queries read data written far
// more than one scrub interval (640 s) ago.
//
// The example drives the library's cell-level machinery directly: a table
// of BCH-protected MLC lines, per-line LWT-4 trackers, and the adaptive
// R-M-read conversion controller. It reports how the read-mode mix and
// average sensing latency evolve across query rounds — the first round is
// dominated by slow R-M-reads, then conversion re-normalizes the hot rows
// and later rounds run almost entirely at R-read speed.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"readduo"
)

const (
	tableRows       = 256
	scrubInterval   = 640.0 // seconds
	k               = 4
	queryRounds     = 4
	queriesPerRound = 512
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("inmemdb: ")
	rng := rand.New(rand.NewSource(7))
	timing := readduo.DefaultSenseTiming()

	// Build phase at t=0: load every row.
	rows := make([]*readduo.Line, tableRows)
	trackers := make([]*readduo.Tracker, tableRows)
	for i := range rows {
		line, err := readduo.NewMLCLine()
		if err != nil {
			log.Fatal(err)
		}
		payload := make([]byte, line.DataBytes())
		rng.Read(payload)
		if err := line.Write(payload, 0, rng); err != nil {
			log.Fatal(err)
		}
		rows[i] = line
		tr, err := readduo.NewTracker(k)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.RecordWrite(0); err != nil {
			log.Fatal(err)
		}
		trackers[i] = tr
	}
	conv, err := readduo.NewConverter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d rows at t=0; querying from t=%.0fs (two intervals later)\n\n",
		tableRows, 2*scrubInterval)

	// The per-line scrub runs every 640 s with W=1: no drift errors under
	// M-sensing, so no rewrite — the trackers just age out.
	advanceScrub := func() {
		for _, tr := range trackers {
			tr.RecordScrub(false)
		}
	}
	advanceScrub() // t = 640 s
	advanceScrub() // t = 1280 s: every row is now untracked

	// Query phase: Zipf-ish skew toward hot rows.
	now := 2 * scrubInterval
	for round := 1; round <= queryRounds; round++ {
		var rReads, rmReads, conversions int
		var latency time.Duration
		for q := 0; q < queriesPerRound; q++ {
			row := rng.Intn(tableRows / 4) // hot quarter of the table
			if rng.Float64() < 0.2 {
				row = rng.Intn(tableRows) // occasional cold row
			}
			label := int(now/(scrubInterval/k)) % k
			okR, err := trackers[row].AllowRSense(label)
			if err != nil {
				log.Fatal(err)
			}
			if okR {
				rReads++
				latency += timing.Latency(readduo.ReadModeR)
				if _, err := rows[row].Read(readduo.LineReadR, now); err != nil {
					log.Fatal(err)
				}
				continue
			}
			// Untracked: R-M-read, possibly converted to a redundant
			// write that re-enables fast reads.
			rmReads++
			latency += timing.Latency(readduo.ReadModeRM)
			res, err := rows[row].Read(readduo.LineReadM, now)
			if err != nil {
				log.Fatal(err)
			}
			if conv.ShouldConvert() {
				conversions++
				if err := rows[row].Write(res.Data, now, rng); err != nil {
					log.Fatal(err)
				}
				if err := trackers[row].RecordWrite(label); err != nil {
					log.Fatal(err)
				}
			}
		}
		total := rReads + rmReads
		p := float64(rmReads) / float64(total)
		// After the build writes aged out, the only tracked rows are the
		// converted ones, so every fast R-read this round is a conversion
		// re-hit — exactly the controller's payoff signal.
		if err := conv.EpochUpdate(p, uint64(conversions), uint64(rReads)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: R-reads %3d  R-M-reads %3d  conversions %3d  T=%3d%%  avg latency %v\n",
			round, rReads, rmReads, conversions, conv.T(), latency/time.Duration(total))
		now += 5 // a few seconds of querying per round
	}
	fmt.Println("\nconversion turned a cold, read-only table back into R-read territory.")
}
