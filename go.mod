module readduo

go 1.22
