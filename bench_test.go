// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// regenerates its artifact and reports the headline reproduced numbers as
// custom metrics, so `go test -bench=.` doubles as a reproduction run.
//
// The full-resolution artifacts come from the commands (cmd/lertables,
// cmd/readduo-sim, cmd/edap, cmd/sweeps); the benchmarks here run reduced
// instruction budgets to stay wall-clock friendly.
package readduo_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"readduo/internal/area"
	"readduo/internal/bch"
	"readduo/internal/campaign"
	"readduo/internal/cell"
	"readduo/internal/drift"
	"readduo/internal/ecp"
	"readduo/internal/engine"
	"readduo/internal/lwt"
	"readduo/internal/readout"
	"readduo/internal/reliability"
	"readduo/internal/report"
	"readduo/internal/sim"
	"readduo/internal/telemetry"
	"readduo/internal/trace"
	"readduo/internal/wearlevel"
)

// benchBudget keeps full-system benchmarks fast; the cmd tools default to
// larger budgets.
const benchBudget = 150_000

// benchSuite is a representative slice of the 14 workloads: the two the
// paper highlights plus a streaming and a balanced one.
func benchSuite(b *testing.B) []trace.Benchmark {
	b.Helper()
	var out []trace.Benchmark
	for _, name := range []string{"mcf", "sphinx3", "lbm", "gcc"} {
		bench, ok := trace.ByName(name)
		if !ok {
			b.Fatalf("missing benchmark %s", name)
		}
		out = append(out, bench)
	}
	return out
}

func runMatrix(b *testing.B, benches []trace.Benchmark, schemes []sim.Scheme) *report.Matrix {
	b.Helper()
	m, err := report.Runner{Budget: benchBudget, Seed: 1}.RunMatrix(benches, schemes)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTableI_DriftModel measures the R-metric crossing-probability
// evaluation that underlies every reliability number (Table I / Eq. 1).
func BenchmarkTableI_DriftModel(b *testing.B) {
	cfg := drift.RMetricConfig()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += cfg.AvgCellErrorProb(640)
	}
	_ = sink
}

// BenchmarkTableIII_LER_R regenerates the full R-metric LER grid.
func BenchmarkTableIII_LER_R(b *testing.B) {
	an, err := reliability.NewAnalyzer(drift.RMetricConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tab reliability.Table
	for i := 0; i < b.N; i++ {
		tab = an.BuildTable(reliability.PaperIntervals(), reliability.PaperECCs())
	}
	b.StopTimer()
	// Headline cells: (BCH=8, S=8) meets the budget; (BCH=8, S=640) does not.
	b.ReportMetric(tab.Values[1][3], "LER(E8,S8)")
	b.ReportMetric(tab.Values[8][3], "LER(E8,S640)")
}

// BenchmarkTableIV_LER_M regenerates the M-metric grid.
func BenchmarkTableIV_LER_M(b *testing.B) {
	an, err := reliability.NewAnalyzer(drift.MMetricConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tab reliability.Table
	for i := 0; i < b.N; i++ {
		tab = an.BuildTable(reliability.PaperIntervals(), reliability.PaperECCs())
	}
	b.StopTimer()
	b.ReportMetric(tab.Values[8][3], "LER(E8,S640)")
}

// BenchmarkTableV_WPolicy evaluates the W=1 interval probabilities.
func BenchmarkTableV_WPolicy(b *testing.B) {
	an, err := reliability.NewAnalyzer(drift.RMetricConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var p2 float64
	for i := 0; i < b.N; i++ {
		var err error
		p2, err = an.WPolicySecondInterval(8, 1, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(p2, "probII(R,8,8)")
}

// BenchmarkTableVII_Area evaluates the NVSim-lite floorplan.
func BenchmarkTableVII_Area(b *testing.B) {
	sub := area.DefaultSubarray()
	var ovh float64
	for i := 0; i < b.N; i++ {
		var err error
		ovh, err = sub.HybridOverhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ovh*100, "overhead%")
}

// BenchmarkTableX_Workloads measures synthetic trace generation throughput.
func BenchmarkTableX_Workloads(b *testing.B) {
	bench, ok := trace.ByName("mcf")
	if !ok {
		b.Fatal("mcf missing")
	}
	gen, err := trace.NewGenerator(bench, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Next(i & 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3_Motivation compares the prior schemes (Scrubbing,
// M-metric, TLC) against Ideal — the study that motivates ReadDuo.
func BenchmarkFigure3_Motivation(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.Ideal(), sim.Scrubbing(), sim.MMetric(), sim.TLC()}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		_, mm, err := m.Normalized("Ideal", report.ExecTime)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(means[1], "Scrubbing-x")
	b.ReportMetric(means[2], "M-metric-x")
	b.ReportMetric(means[3], "TLC-x")
}

// BenchmarkFigure6_SDWDistribution runs the cell-population study behind
// the full-vs-selective rewrite argument on the sharded Monte-Carlo
// kernel. The shard count is pinned (part of the determinism key); the
// worker pool sizes itself to the machine.
func BenchmarkFigure6_SDWDistribution(b *testing.B) {
	const shards = 8
	var crowd float64
	for i := 0; i < b.N; i++ {
		p, err := cell.NewShardedPopulation(drift.RMetricConfig(), 2, 20000, 1, shards, 0)
		if err != nil {
			b.Fatal(err)
		}
		drifted := p.DriftedCells(640)
		p.RewriteCells(drifted, 640)
		crowd = p.GuardBandMass(640, 0.25)
	}
	b.ReportMetric(crowd*100, "guardband%")
}

// BenchmarkFigure9_Performance runs the headline execution-time comparison
// across all seven schemes.
func BenchmarkFigure9_Performance(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{
		sim.Ideal(), sim.Scrubbing(), sim.MMetric(), sim.TLC(),
		sim.Hybrid(), sim.LWT(4, true), sim.Select(4, 2),
	}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		_, mm, err := m.Normalized("Ideal", report.ExecTime)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(means[4], "Hybrid-x")
	b.ReportMetric(means[5], "LWT4-x")
	b.ReportMetric(means[6], "Select42-x")
}

// BenchmarkFigure10_Energy runs the dynamic-energy comparison.
func BenchmarkFigure10_Energy(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.Ideal(), sim.Scrubbing(), sim.Hybrid(), sim.LWT(4, true), sim.Select(4, 2)}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		_, mm, err := m.Normalized("Ideal", report.DynamicEnergy)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(means[3], "LWT4-energy-x")
	b.ReportMetric(means[4], "Select42-energy-x")
}

// BenchmarkFigure11_EDAP computes the energy-delay-area comparison against
// TLC.
func BenchmarkFigure11_EDAP(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.TLC(), sim.Scrubbing(), sim.MMetric(), sim.LWT(4, true), sim.Select(4, 2)}
	var productD map[string]float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		var err error
		productD, err = m.EDAPMatrix("TLC", false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(productD["LWT-4"], "LWT4-EDAP-vs-TLC")
	b.ReportMetric(productD["Select-4:2"], "Select42-EDAP-vs-TLC")
}

// BenchmarkFigure12_SubintervalK sweeps the tracking granularity.
func BenchmarkFigure12_SubintervalK(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.Ideal(), sim.LWT(2, true), sim.LWT(4, true)}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		_, mm, err := m.Normalized("Ideal", report.ExecTime)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(100*(means[1]-means[2])/means[1], "k4-vs-k2-%")
}

// BenchmarkFigure13_RewriteS sweeps the selective-rewrite spacing.
func BenchmarkFigure13_RewriteS(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.Ideal(), sim.Select(4, 1), sim.Select(4, 2)}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		_, mm, err := m.Normalized("Ideal", report.DynamicEnergy)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(100*(means[1]-means[2])/means[1], "s2-vs-s1-energy-%")
}

// BenchmarkFigure14_Conversion compares LWT with and without R-M-read
// conversion (sphinx3 is the paper's showcase).
func BenchmarkFigure14_Conversion(b *testing.B) {
	bench, ok := trace.ByName("sphinx3")
	if !ok {
		b.Fatal("sphinx3 missing")
	}
	schemes := []sim.Scheme{sim.Ideal(), sim.LWT(4, false), sim.LWT(4, true)}
	var means []float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, []trace.Benchmark{bench}, schemes)
		_, mm, err := m.Normalized("Ideal", report.ExecTime)
		if err != nil {
			b.Fatal(err)
		}
		means = mm
	}
	b.ReportMetric(100*(means[1]-means[2])/means[1], "conversion-gain-%")
}

// BenchmarkFigure15_Lifetime compares write traffic across schemes.
func BenchmarkFigure15_Lifetime(b *testing.B) {
	benches := benchSuite(b)
	schemes := []sim.Scheme{sim.Ideal(), sim.Scrubbing(), sim.Hybrid(), sim.LWT(4, true), sim.Select(4, 2)}
	var life map[string]float64
	for i := 0; i < b.N; i++ {
		m := runMatrix(b, benches, schemes)
		var err error
		life, err = m.RelativeLifetime("Ideal")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(life["Select-4:2"], "Select42-lifetime-x")
	b.ReportMetric(life["LWT-4"], "LWT4-lifetime-x")
}

// BenchmarkBCHEncode and BenchmarkBCHDecode measure the line codec.
func BenchmarkBCHEncode(b *testing.B) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, code.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBCHDecodeClean(b *testing.B) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, code.DataBytes())
	rand.New(rand.NewSource(1)).Read(data)
	parity, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBCHDecodeEightErrors(b *testing.B) {
	code, err := bch.New(10, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, code.DataBytes())
	rng.Read(data)
	parity, err := code.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := append([]byte(nil), data...)
		p := append([]byte(nil), parity...)
		for e := 0; e < 8; e++ {
			pos := rng.Intn(512)
			d[pos/8] ^= 1 << (pos % 8)
		}
		b.StartTimer()
		if _, err := code.Decode(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignEngine runs a reduced evaluation matrix through the
// parallel campaign engine at GOMAXPROCS workers — the configuration
// readduo-sim uses for the full 7x14 matrix.
func BenchmarkCampaignEngine(b *testing.B) {
	spec := campaign.Spec{
		Benchmarks: benchSuite(b),
		Schemes:    []sim.Scheme{sim.Ideal(), sim.Hybrid(), sim.LWT(4, true)},
		Budget:     benchBudget,
	}
	var done int
	for i := 0; i < b.N; i++ {
		out, err := campaign.Run(context.Background(), spec, campaign.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if out.Failed > 0 {
			b.Fatalf("%d jobs failed", out.Failed)
		}
		done = out.Done
	}
	b.ReportMetric(float64(done), "jobs/op")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkSimulatorThroughput measures end-to-end simulated instructions
// per second of wall clock.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, ok := trace.ByName("gcc")
	if !ok {
		b.Fatal("gcc missing")
	}
	cfg := sim.DefaultConfig(bench)
	cfg.CPU.InstrBudget = benchBudget
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, sim.LWT(4, true)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchBudget*4), "instrs/op")
}

// BenchmarkSimulatorThroughputParallel measures the same end-to-end
// simulation on a 16-bank controller under each event engine. The two
// variants are distinct rows of one baseline for the plain regression
// gate; to state a speedup, split each side into its own document and
// let `benchjson compare -cross-cohort` pair them by engine-normalized
// name. The shard count rides in the name without a trailing "-<int>"
// because benchjson strips that form as a GOMAXPROCS suffix. On a
// multi-core host the parallel engine's window fan-out is the speedup
// being claimed; on a single core it degenerates to the serial order
// (bit-identical results either way — see the differential tests in
// internal/sim).
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	bench, ok := trace.ByName("gcc")
	if !ok {
		b.Fatal("gcc missing")
	}
	variants := []struct {
		name   string
		kind   engine.Kind
		shards int
	}{
		{"engine=serial", engine.Serial, 0},
		{"engine=parallel8", engine.Parallel, 8},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := sim.DefaultConfig(bench)
			cfg.CPU.InstrBudget = benchBudget
			cfg.Mem.Banks = 16
			cfg.Mem.Engine = v.kind
			cfg.Mem.EngineShards = v.shards
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, sim.LWT(4, true)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchBudget*4), "instrs/op")
		})
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out ---

// BenchmarkAblationWriteCancellation quantifies the value of write
// cancellation/pausing: without it, demand reads wait behind 1000 ns
// programming operations.
func BenchmarkAblationWriteCancellation(b *testing.B) {
	bench, ok := trace.ByName("lbm") // write-heavy: cancellation matters most
	if !ok {
		b.Fatal("lbm missing")
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(bench)
		cfg.CPU.InstrBudget = benchBudget
		r1, err := sim.Run(cfg, sim.Ideal())
		if err != nil {
			b.Fatal(err)
		}
		cfg.Mem.CancelWrites = false
		r2, err := sim.Run(cfg, sim.Ideal())
		if err != nil {
			b.Fatal(err)
		}
		with, without = float64(r1.ExecTime), float64(r2.ExecTime)
	}
	b.ReportMetric(without/with, "no-cancel-slowdown-x")
}

// BenchmarkAblationMLP quantifies the memory-level-parallelism window: a
// strictly blocking core (MLP=1) exposes the full sensing latency on every
// read.
func BenchmarkAblationMLP(b *testing.B) {
	bench, ok := trace.ByName("milc")
	if !ok {
		b.Fatal("milc missing")
	}
	var mlp4, mlp1 float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(bench)
		cfg.CPU.InstrBudget = benchBudget
		r1, err := sim.Run(cfg, sim.MMetric())
		if err != nil {
			b.Fatal(err)
		}
		cfg.CPU.MLP = 1
		r2, err := sim.Run(cfg, sim.MMetric())
		if err != nil {
			b.Fatal(err)
		}
		mlp4, mlp1 = float64(r1.ExecTime), float64(r2.ExecTime)
	}
	b.ReportMetric(mlp1/mlp4, "blocking-core-slowdown-x")
}

// BenchmarkAblationConversionEconomics compares the adaptive converter
// against forced-always and forced-never conversion on the showcase
// workload.
func BenchmarkAblationConversionEconomics(b *testing.B) {
	bench, ok := trace.ByName("sphinx3")
	if !ok {
		b.Fatal("sphinx3 missing")
	}
	var adaptive, never float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(bench)
		cfg.CPU.InstrBudget = 1_000_000
		r1, err := sim.Run(cfg, sim.LWT(4, true))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(cfg, sim.LWT(4, false))
		if err != nil {
			b.Fatal(err)
		}
		adaptive, never = float64(r1.ExecTime), float64(r2.ExecTime)
	}
	b.ReportMetric(never/adaptive, "adaptive-vs-never-x")
}

// BenchmarkAblationScrubWalkRate verifies the scrub engine's bandwidth
// theft scales with the interval: S=8s steals ~16% of a bank, S=640s a
// fraction of a percent.
func BenchmarkAblationScrubWalkRate(b *testing.B) {
	bench, ok := trace.ByName("gcc")
	if !ok {
		b.Fatal("gcc missing")
	}
	var busyShort, busyLong float64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(bench)
		cfg.CPU.InstrBudget = benchBudget
		r1, err := sim.Run(cfg, sim.Scrubbing()) // S=8s
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(cfg, sim.MMetric()) // S=640s
		if err != nil {
			b.Fatal(err)
		}
		busyShort = float64(r1.Mem.ScrubReads)
		busyLong = float64(r2.Mem.ScrubReads)
	}
	b.ReportMetric(busyShort/busyLong, "scrub-traffic-ratio-x")
}

// --- Substrate micro-benchmarks ---

// BenchmarkDeviceRead measures the cell-fidelity ReadDuo pipeline (tracked
// fast path).
func BenchmarkDeviceRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d, err := readout.NewDevice(readout.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, d.DataBytes())
	rng.Read(data)
	if _, err := d.Write(data, 0, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Read(1+float64(i)*1e-6, nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLWTOracle measures the closed-form freshness test the simulator
// evaluates per read.
func BenchmarkLWTOracle(b *testing.B) {
	var sink bool
	for i := 0; i < b.N; i++ {
		sub := lwt.SubIndex(int64(i)*1_000_000, 12345, 640_000_000_000_000, 4)
		sink = lwt.AllowRSenseAt(4, sub, sub-3)
	}
	_ = sink
}

// BenchmarkStartGapMap measures the wear-leveling address translation.
func BenchmarkStartGapMap(b *testing.B) {
	sg, err := wearlevel.New(1<<20, 100)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		pa, err := sg.Map(uint64(i) & (1<<20 - 1))
		if err != nil {
			b.Fatal(err)
		}
		sink += pa
		sg.OnWrite()
	}
	_ = sink
}

// BenchmarkECPWrite measures a verified write through an ECP-protected line
// with wearout armed.
func BenchmarkECPWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	line, err := cell.NewLine(drift.RMetricConfig(), drift.MMetricConfig(), mustLineCode(b))
	if err != nil {
		b.Fatal(err)
	}
	line.ArmWearout(1e9, 0.25, rng) // effectively unlimited: measure the verify cost
	pl, err := ecp.NewProtectedLine(line, 6)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, pl.DataBytes())
	rng.Read(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pl.Write(data, float64(i), rng); err != nil {
			b.Fatal(err)
		}
	}
}

func mustLineCode(b *testing.B) *bch.Code {
	b.Helper()
	code, err := bch.New(10, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	return code
}

// --- Engine and observability micro-benchmarks ---

// engineSchemes is the per-family benchmark set: one representative of
// every read/scrub/write policy combination the registry exposes.
func engineSchemes() []sim.Scheme {
	return []sim.Scheme{
		sim.Ideal(), sim.Scrubbing(), sim.MMetric(), sim.TLC(),
		sim.Hybrid(), sim.LWT(4, true), sim.Select(4, 2),
	}
}

// BenchmarkEngineScheme measures engine read/write dispatch throughput
// per scheme family with telemetry disabled — the baseline the
// Telemetry variant below is compared against.
func BenchmarkEngineScheme(b *testing.B) {
	bench, ok := trace.ByName("gcc")
	if !ok {
		b.Fatal("gcc missing")
	}
	for _, s := range engineSchemes() {
		b.Run(s.Name(), func(b *testing.B) {
			cfg := sim.DefaultConfig(bench)
			cfg.CPU.InstrBudget = benchBudget
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSchemeTelemetry reruns the same engines with a live
// registry attached: the delta against BenchmarkEngineScheme is the
// instrumented-path cost (the disabled path is covered by the nil
// variants of the Telemetry* benchmarks below).
func BenchmarkEngineSchemeTelemetry(b *testing.B) {
	bench, ok := trace.ByName("gcc")
	if !ok {
		b.Fatal("gcc missing")
	}
	reg := telemetry.NewRegistry("bench")
	for _, s := range engineSchemes() {
		b.Run(s.Name(), func(b *testing.B) {
			cfg := sim.DefaultConfig(bench)
			cfg.CPU.InstrBudget = benchBudget
			cfg.Telemetry = reg
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProbCacheColdBuild measures the quadrature-heavy probability
// table construction the memo table normally amortizes away.
func BenchmarkProbCacheColdBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim.PurgeSharedCaches()
		sim.SharedProbTable(drift.MetricR, 8)
	}
}

// BenchmarkProbCacheHotLookup measures the age-indexed lookup on the
// scrub-scan and hybrid-read hot paths.
func BenchmarkProbCacheHotLookup(b *testing.B) {
	tab := sim.SharedProbTable(drift.MetricR, 8)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tab.Retry(1 + float64(i&1023))
	}
	_ = sink
}

// BenchmarkTelemetryCounter compares the disabled (nil) and live probe
// paths of the counter, the metric on every engine dispatch.
func BenchmarkTelemetryCounter(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var c *telemetry.Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("live", func(b *testing.B) {
		c := telemetry.NewRegistry("bench").Counter("c")
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

// BenchmarkTelemetryHistogram compares the disabled and live paths of
// the lock-striped histogram.
func BenchmarkTelemetryHistogram(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var h *telemetry.Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i))
		}
	})
	b.Run("live", func(b *testing.B) {
		h := telemetry.NewRegistry("bench").Histogram("h")
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i))
		}
	})
	b.Run("live-parallel", func(b *testing.B) {
		h := telemetry.NewRegistry("bench").Histogram("h")
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				h.Observe(i)
				i++
			}
		})
	})
}
